package plan

import (
	"context"
	"sync"
	"testing"

	"cheetah/internal/engine"
	"cheetah/internal/switchsim"
	"cheetah/internal/workload/multitenant"
)

// TestServeConcurrentEquivalence is the serving acceptance bar: N
// goroutine clients multiplexing the full mixed workload through one
// shared switch must produce, for every query, exactly the result of
// exact direct execution.
func TestServeConcurrentEquivalence(t *testing.T) {
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 4000, RankRows: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(mix.Visits, Options{Workers: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := db.Serve(context.Background(), ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	const clients = 8
	const total = 3 * multitenant.NumKinds
	jobs := make(chan int, total)
	for i := 0; i < total; i++ {
		jobs <- i
	}
	close(jobs)

	var wg sync.WaitGroup
	var mu sync.Mutex
	sawQueryIDs := false
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				q := mix.Query(i)
				ex, err := sv.Submit(context.Background(), q)
				if err != nil {
					t.Errorf("query %d (%s): %v", i, q.Kind, err)
					continue
				}
				direct, err := engine.ExecDirect(q)
				if err != nil {
					t.Errorf("query %d (%s): direct: %v", i, q.Kind, err)
					continue
				}
				if !direct.Equal(ex.Result) {
					t.Errorf("query %d (%s): served result diverges from ExecDirect", i, q.Kind)
				}
				mu.Lock()
				if ex.QueryID != 0 {
					sawQueryIDs = true
					if ex.PipelineUtil.StagesUsed == 0 {
						t.Errorf("query %d (%s): served execution reports empty pipeline utilization", i, q.Kind)
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if !sawQueryIDs {
		t.Fatal("no query executed through the shared pipeline")
	}
	if st := sv.Stats(); st.Active != 0 || st.Queued != 0 {
		t.Fatalf("serving handle not drained: %+v", st)
	}
	if u := sv.Utilization(); u.ALUsUsed != 0 {
		t.Fatalf("shared pipeline not empty after serving: %v", u)
	}
}

// TestServeOversizedFallsBackDirect pins the oversized-query bypass: on
// a switch no pruning program fits, Submit must run the exact direct
// path immediately instead of queueing forever.
func TestServeOversizedFallsBackDirect(t *testing.T) {
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 1500, RankRows: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tiny := switchsim.Model{
		Name:             "toosmall",
		Stages:           4,
		ALUsPerStage:     1,
		SRAMPerStageBits: 1 << 10,
		TCAMEntries:      1,
		MetadataBits:     64,
		Recirculation:    1,
	}
	db, err := Open(mix.Visits, Options{Workers: 2, Seed: 3, Model: tiny})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := db.Serve(context.Background(), ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	q := mix.Query(1) // DISTINCT
	ex, err := sv.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Plan.Mode != ModeDirect {
		t.Fatalf("mode = %v, want direct fallback", ex.Plan.Mode)
	}
	direct, err := engine.ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(ex.Result) {
		t.Fatal("fallback result diverges from ExecDirect")
	}
}

// TestServeRewritesClusterPlans pins the Submit contract for UseCluster
// sessions: serving has no multiplexed cluster transport, so the plan
// that a served query reports must be the in-process mode that actually
// ran (with the rewrite recorded in the reason), never a phantom
// ModeCluster with a nil ClusterReport.
func TestServeRewritesClusterPlans(t *testing.T) {
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 1500, RankRows: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(mix.Visits, Options{Workers: 2, Seed: 3, UseCluster: true})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := db.Serve(context.Background(), ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	q := mix.Query(1) // DISTINCT: single-pass, so Plan() picks ModeCluster
	if p, err := db.Plan(q); err != nil || p.Mode != ModeCluster {
		t.Fatalf("precondition: Plan mode = %v, err = %v, want cluster", p.Mode, err)
	}
	ex, err := sv.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Plan.Mode != ModeCheetah {
		t.Fatalf("served mode = %v, want cheetah rewrite", ex.Plan.Mode)
	}
	if ex.ClusterReport != nil {
		t.Fatal("in-process served execution carries a cluster report")
	}
	direct, err := engine.ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(ex.Result) {
		t.Fatal("rewritten cluster plan diverges from ExecDirect")
	}
}

// TestServeClosedFallsBackDirect pins the post-Close semantics: queries
// submitted after Close still complete, as exact direct executions.
func TestServeClosedFallsBackDirect(t *testing.T) {
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 1500, RankRows: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(mix.Visits, Options{Workers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sv, err := db.Serve(ctx, ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cancel()   // context cancellation closes the handle (async) ...
	sv.Close() // ... and Close is idempotent, making the test deterministic
	q := mix.Query(2)
	ex, err := sv.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Plan.Mode != ModeDirect {
		t.Fatalf("mode after close = %v (%s), want direct", ex.Plan.Mode, ex.Plan.Reason)
	}
}
