package plan

import (
	"strings"
	"testing"

	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/table"
)

// testTable builds a small mixed-type table: name/seller String,
// price/stock Int64.
func testTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.MustNew(table.Schema{
		{Name: "name", Type: table.String},
		{Name: "seller", Type: table.String},
		{Name: "price", Type: table.Int64},
		{Name: "stock", Type: table.Int64},
	})
	for _, r := range []struct {
		name, seller string
		price, stock int64
	}{
		{"Burger", "McCheetah", 4, 10},
		{"Pizza", "Papizza", 7, 3},
		{"Fries", "McCheetah", 2, 50},
		{"Jello", "JellyFish", 5, 8},
	} {
		if err := tbl.AppendRow(r.name, r.seller, r.price, r.stock); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func openTest(t *testing.T) *Session {
	t.Helper()
	s, err := Open(testTable(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBuilderErrorSurface pins the satellite requirement: every invalid
// build returns a descriptive error at Build time, not at Exec.
func TestBuilderErrorSurface(t *testing.T) {
	s := openTest(t)
	cases := []struct {
		label string
		build func() *Builder
		want  string
	}{
		{"empty query", func() *Builder { return s.Select() },
			"empty query"},
		{"unknown column in Where", func() *Builder {
			return s.Select().Where("ghost", prune.OpGT, 1)
		}, `unknown column "ghost"`},
		{"unknown column in Distinct", func() *Builder {
			return s.Select().Distinct("ghost")
		}, `unknown column "ghost"`},
		{"distinct with no columns", func() *Builder {
			return s.Select().Distinct()
		}, "DISTINCT needs at least one column"},
		{"topn with n=0", func() *Builder {
			return s.Select().TopN("price", 0)
		}, "top-n needs N > 0"},
		{"topn with negative n", func() *Builder {
			return s.Select().TopN("price", -3)
		}, "top-n needs N > 0"},
		{"topn on string column", func() *Builder {
			return s.Select().TopN("seller", 3)
		}, `"seller" is string`},
		{"join without right table", func() *Builder {
			return s.Select().Join(nil, "name", "name")
		}, "JOIN needs a right table"},
		{"having without group-by-sum", func() *Builder {
			return s.Select().Having(5)
		}, "HAVING needs a preceding GroupBySum"},
		{"conflicting clauses", func() *Builder {
			return s.Select().Distinct("seller").TopN("price", 3)
		}, "cannot combine TOP N with an earlier distinct clause"},
		{"where mixed with skyline", func() *Builder {
			return s.Select().Where("price", prune.OpGT, 1).Skyline("price", "stock")
		}, "cannot combine SKYLINE"},
		{"empty like pattern", func() *Builder {
			return s.Select().WhereLike("name", "")
		}, "non-empty pattern"},
		{"like on int column", func() *Builder {
			return s.Select().WhereLike("price", "4%")
		}, `"price" is int64`},
		{"comparison on string column", func() *Builder {
			return s.Select().Where("name", prune.OpGT, 1)
		}, `"name" is string`},
		{"skyline with one dimension", func() *Builder {
			return s.Select().Skyline("price")
		}, "at least two dimensions"},
		{"group-by-sum string aggregate", func() *Builder {
			return s.Select().GroupBySum("seller", "name")
		}, `"name" is string`},
		{"count with no predicates", func() *Builder {
			return s.Select().Count()
		}, "needs predicates"},
	}
	for _, c := range cases {
		q, err := c.build().Build()
		if err == nil {
			t.Errorf("%s: Build accepted (query %+v)", c.label, q)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.label, err, c.want)
		}
	}
}

// TestBuilderErrorsAccumulate checks Build reports every problem, not
// just the first.
func TestBuilderErrorsAccumulate(t *testing.T) {
	s := openTest(t)
	_, err := s.Select().Distinct().Having(3).Build()
	if err == nil {
		t.Fatal("bad build accepted")
	}
	msg := err.Error()
	for _, want := range []string{"DISTINCT needs at least one column", "HAVING needs a preceding GroupBySum"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error %q missing %q", msg, want)
		}
	}
}

// TestBuilderReuseAfterBuild: Build must not freeze the builder — a
// predicate added after a first Build participates in the next Build's
// default AND formula.
func TestBuilderReuseAfterBuild(t *testing.T) {
	s := openTest(t)
	b := s.Select().Where("price", prune.OpGT, 3)
	q1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	b.Where("stock", prune.OpGT, 9)
	q2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := engine.ExecDirect(q1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := engine.ExecDirect(q2)
	if err != nil {
		t.Fatal(err)
	}
	// price>3 matches Burger, Pizza, Jello; AND stock>9 leaves Burger.
	if len(r1.Rows) != 3 || len(r2.Rows) != 1 {
		t.Fatalf("reused builder: first build %d rows (want 3), second %d rows (want 1)",
			len(r1.Rows), len(r2.Rows))
	}
}

// TestBuilderValidBuilds checks the happy paths compile to validated
// queries of the right kind.
func TestBuilderValidBuilds(t *testing.T) {
	s := openTest(t)
	right := testTable(t)
	cases := []struct {
		label string
		build func() *Builder
		kind  string
	}{
		{"filter", func() *Builder {
			return s.Select().Where("price", prune.OpGT, 3).WhereLike("name", "_i%")
		}, "filter"},
		{"count", func() *Builder {
			return s.Select().Where("price", prune.OpGT, 3).Count()
		}, "filter"},
		{"distinct", func() *Builder { return s.Select().Distinct("seller") }, "distinct"},
		{"topn", func() *Builder { return s.Select().TopN("price", 2) }, "topn"},
		{"groupby-max", func() *Builder { return s.Select().GroupByMax("seller", "price") }, "groupby-max"},
		{"groupby-sum", func() *Builder { return s.Select().GroupBySum("seller", "price") }, "groupby-sum"},
		{"having", func() *Builder { return s.Select().GroupBySum("seller", "price").Having(5) }, "having"},
		{"join", func() *Builder { return s.Select().Join(right, "name", "name") }, "join"},
		{"skyline", func() *Builder { return s.Select().Skyline("price", "stock") }, "skyline"},
	}
	for _, c := range cases {
		q, err := c.build().Build()
		if err != nil {
			t.Errorf("%s: %v", c.label, err)
			continue
		}
		if q.Kind.String() != c.kind {
			t.Errorf("%s: built kind %v", c.label, q.Kind)
		}
	}
}
