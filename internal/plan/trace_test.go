package plan

import (
	"context"
	"strings"
	"testing"

	"cheetah/internal/obs"
	"cheetah/internal/prune"
	"cheetah/internal/table"
	"cheetah/internal/workload"
)

// traceKindCases opens sessions at the given width and builds one query
// per kind — the same 8-kind matrix the equivalence tests pin.
func traceKindCases(t *testing.T, switches int) []struct {
	label string
	s     *Session
	b     *Builder
} {
	t.Helper()
	uv, err := workload.UserVisits(workload.DefaultUserVisits(4000, 1))
	if err != nil {
		t.Fatal(err)
	}
	rk := workload.Rankings(3000, 2)
	orders, lineitem, err := workload.TPCHQ3(800, 3)
	if err != nil {
		t.Fatal(err)
	}
	open := func(tb *table.Table) *Session {
		s, err := Open(tb, Options{Workers: 2, Seed: 7, Switches: switches})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	sUV, sRK, sOrd := open(uv), open(rk), open(orders)
	return []struct {
		label string
		s     *Session
		b     *Builder
	}{
		{"filter", sUV, sUV.Select().Where("adRevenue", prune.OpGT, 300_000)},
		{"distinct", sUV, sUV.Select().Distinct("userAgent")},
		{"topn", sUV, sUV.Select().TopN("adRevenue", 100)},
		{"groupby-max", sUV, sUV.Select().GroupByMax("userAgent", "adRevenue")},
		{"groupby-sum", sUV, sUV.Select().GroupBySum("languageCode", "adRevenue")},
		{"having", sUV, sUV.Select().GroupBySum("languageCode", "adRevenue").Having(500_000)},
		{"join", sOrd, sOrd.Select().Join(lineitem, "o_orderkey", "l_orderkey")},
		{"skyline", sRK, sRK.Select().Skyline("pageRank", "avgDuration")},
	}
}

// planStages indexes an execution's spans by stage.
func planStages(ex *Execution) map[obs.Stage][]obs.Span {
	out := make(map[obs.Stage][]obs.Span)
	for _, s := range ex.Trace().Spans() {
		out[s.Stage] = append(out[s.Stage], s)
	}
	return out
}

// TestExplainAnalyzeAllKindsAcrossPaths is the tentpole's rendering
// acceptance: for every kind, the default (fused) path, the sharded
// path and the direct path each produce a trace whose span tree renders
// the stages that actually ran — plan and the per-switch engine stages —
// plus a measured wall clock.
func TestExplainAnalyzeAllKindsAcrossPaths(t *testing.T) {
	ctx := context.Background()

	// Default single-switch path: plan span + one fused engine span.
	for _, c := range traceKindCases(t, 1) {
		q, err := c.b.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.label, err)
		}
		ex, err := c.s.Exec(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", c.label, err)
		}
		if ex.Wall <= 0 {
			t.Fatalf("%s fused: Wall not captured", c.label)
		}
		st := planStages(ex)
		if len(st[obs.StagePlan]) == 0 {
			t.Fatalf("%s fused: no plan span:\n%s", c.label, ex.Trace())
		}
		if len(st[obs.StageFused]) == 0 {
			t.Fatalf("%s fused: no fused span:\n%s", c.label, ex.Trace())
		}
		if ex.RowsSkipped > 0 && len(st[obs.StageSkip]) == 0 {
			t.Fatalf("%s fused: rows skipped but no skip span:\n%s", c.label, ex.Trace())
		}
		out := ex.ExplainAnalyze()
		for _, want := range []string{"wall:", "trace:", "plan", "fused"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s fused: ExplainAnalyze missing %q:\n%s", c.label, want, out)
			}
		}
	}

	// Sharded path: per-switch shard spans + the global merge.
	const shards = 3
	for _, c := range traceKindCases(t, shards) {
		q, err := c.b.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.label, err)
		}
		ex, err := c.s.Exec(ctx, q)
		if err != nil {
			t.Fatalf("%s sharded: %v", c.label, err)
		}
		st := planStages(ex)
		seen := map[int]bool{}
		for _, s := range st[obs.StageShard] {
			seen[s.Switch] = true
		}
		if len(seen) != shards {
			t.Fatalf("%s sharded: shard spans on %d switches, want %d:\n%s",
				c.label, len(seen), shards, ex.Trace())
		}
		if len(st[obs.StageMerge]) == 0 {
			t.Fatalf("%s sharded: no merge span:\n%s", c.label, ex.Trace())
		}
		out := ex.ExplainAnalyze()
		for _, want := range []string{"wall:", "shard", "merge", "switch="} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s sharded: ExplainAnalyze missing %q:\n%s", c.label, want, out)
			}
		}
	}

	// Direct path: the scan span (ExecPlan on a direct plan — no plan
	// span, planning happened outside the call).
	for _, c := range traceKindCases(t, 1) {
		q, err := c.b.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.label, err)
		}
		fb := &Plan{
			Query: q, Mode: ModeDirect, Model: c.s.opts.Model,
			Workers: 1, Switches: 1, Reason: "test: forced direct",
		}
		ex, err := c.s.ExecPlan(ctx, fb)
		if err != nil {
			t.Fatalf("%s direct: %v", c.label, err)
		}
		st := planStages(ex)
		if len(st[obs.StageScan]) == 0 {
			t.Fatalf("%s direct: no scan span:\n%s", c.label, ex.Trace())
		}
		if got := st[obs.StageScan][0].Entries; got != int64(queryRows(q)) {
			t.Fatalf("%s direct: scan span entries %d != %d rows", c.label, got, queryRows(q))
		}
		if !strings.Contains(ex.ExplainAnalyze(), "scan") {
			t.Fatalf("%s direct: ExplainAnalyze missing scan:\n%s", c.label, ex.ExplainAnalyze())
		}
	}
}

// TestPlanTracingEquivalenceAndOptOut pins the invariant at the session
// layer: tracing (default-on) changes no results, and DisableTracing
// yields a nil trace with the wall clock still captured.
func TestPlanTracingEquivalenceAndOptOut(t *testing.T) {
	ctx := context.Background()
	uv, err := workload.UserVisits(workload.DefaultUserVisits(4000, 1))
	if err != nil {
		t.Fatal(err)
	}
	on, err := Open(uv, Options{Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Open(uv, Options{Workers: 2, Seed: 7, DisableTracing: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, build := range []func(s *Session) *Builder{
		func(s *Session) *Builder { return s.Select().Where("adRevenue", prune.OpGT, 300_000) },
		func(s *Session) *Builder { return s.Select().TopN("adRevenue", 100) },
		func(s *Session) *Builder { return s.Select().GroupBySum("languageCode", "adRevenue") },
	} {
		qOn, err := build(on).Build()
		if err != nil {
			t.Fatal(err)
		}
		qOff, err := build(off).Build()
		if err != nil {
			t.Fatal(err)
		}
		exOn, err := on.Exec(ctx, qOn)
		if err != nil {
			t.Fatal(err)
		}
		exOff, err := off.Exec(ctx, qOff)
		if err != nil {
			t.Fatal(err)
		}
		if !exOn.Result.Equal(exOff.Result) {
			t.Fatal("tracing changed the result")
		}
		if exOn.Traffic != exOff.Traffic || exOn.Stats != exOff.Stats {
			t.Fatalf("tracing changed traffic/stats: %+v vs %+v", exOn.Traffic, exOff.Traffic)
		}
		if exOn.Trace() == nil {
			t.Fatal("tracing is not on by default")
		}
		if exOff.Trace() != nil {
			t.Fatal("DisableTracing left a trace attached")
		}
		if exOff.Wall <= 0 {
			t.Fatal("DisableTracing lost the wall clock")
		}
		if !strings.Contains(exOff.ExplainAnalyze(), "trace:   disabled") {
			t.Fatalf("untraced ExplainAnalyze:\n%s", exOff.ExplainAnalyze())
		}
	}
}

// TestSubmitQoSTrace pins the served path's spans: plan + admission
// (stamped with the placed switch and the fabric-assigned QueryID) +
// the engine stages, with one Wall over the whole submission.
func TestSubmitQoSTrace(t *testing.T) {
	ctx := context.Background()
	uv, err := workload.UserVisits(workload.DefaultUserVisits(4000, 1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(uv, Options{Workers: 2, Seed: 7, Switches: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sv, err := s.Serve(ctx, ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	q, err := s.Select().Where("adRevenue", prune.OpGT, 300_000).Build()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := sv.Submit(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Wall <= 0 {
		t.Fatal("Submit: Wall not captured")
	}
	st := planStages(ex)
	if len(st[obs.StagePlan]) == 0 || len(st[obs.StageAdmit]) == 0 {
		t.Fatalf("Submit: missing plan/admit spans:\n%s", ex.Trace())
	}
	if got := st[obs.StageAdmit][0].Switch; got != ex.Switch {
		t.Fatalf("admit span switch %d != placed switch %d", got, ex.Switch)
	}
	if ex.QueryID != 0 && ex.Trace().QueryID() != ex.QueryID {
		t.Fatalf("trace query id %d != execution's %d", ex.Trace().QueryID(), ex.QueryID)
	}
	if out := ex.ExplainAnalyze(); !strings.Contains(out, "admit") {
		t.Fatalf("ExplainAnalyze missing admit:\n%s", out)
	}
}

// TestSubscriptionDeltaTrace pins the streaming path: every completed
// delta publishes a fresh trace with a top-level delta span bracketing
// the engine stages that ran beneath it.
func TestSubscriptionDeltaTrace(t *testing.T) {
	ctx := streamCtx(t)
	uv, err := workload.UserVisits(workload.DefaultUserVisits(1600, 1))
	if err != nil {
		t.Fatal(err)
	}
	target, err := table.New(uv.Schema())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(target, Options{Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Stream(ctx, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.Select().Where("adRevenue", prune.OpGT, 300_000).Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := st.Subscribe(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if sub.Trace() != nil {
		t.Fatal("subscription has a trace before any delta ran")
	}
	appendInChunks(t, st, uv, 400)
	if err := sub.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	tr := sub.Trace()
	if tr == nil {
		t.Fatal("no delta trace after flush")
	}
	var delta, engineStages int
	for _, sp := range tr.Spans() {
		switch sp.Stage {
		case obs.StageDelta:
			delta++
			if sp.Entries <= 0 {
				t.Fatalf("delta span carries no entries:\n%s", tr)
			}
		case obs.StageFused, obs.StageEncode, obs.StagePrune, obs.StageMerge, obs.StageScan:
			engineStages++
		}
	}
	if delta == 0 {
		t.Fatalf("no delta span:\n%s", tr)
	}
	if engineStages == 0 {
		t.Fatalf("delta trace has no engine stages beneath it:\n%s", tr)
	}
}
