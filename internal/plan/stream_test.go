package plan

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/switchsim"
	"cheetah/internal/table"
	"cheetah/internal/workload/multitenant"
)

// streamCtx bounds every streaming test wait.
func streamCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// appendInChunks drives rows of src into st in chunk-sized batches.
func appendInChunks(t *testing.T, st *Streaming, src *table.Table, chunk int) {
	t.Helper()
	n := src.NumRows()
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		v, err := src.View(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.AppendBatch(v); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamSubscriptionEquivalence is the acceptance invariant: for
// every kind, streaming through real fabric leases at widths 1 and 4,
// the standing result after an append schedule of mixed batch sizes is
// bit-identical to ExecDirect over the full prefix — with the standing
// program holding switch state across deltas.
func TestStreamSubscriptionEquivalence(t *testing.T) {
	for _, switches := range []int{1, 4} {
		for _, seed := range []uint64{1, 0xbeef} {
			mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 1600, RankRows: 700, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			for kind := 0; kind < multitenant.NumKinds; kind++ {
				base := mix.Query(kind)
				t.Run(fmt.Sprintf("switches=%d/seed=%#x/%v", switches, seed, base.Kind), func(t *testing.T) {
					ctx := streamCtx(t)
					target, err := table.New(mix.Visits.Schema())
					if err != nil {
						t.Fatal(err)
					}
					db, err := Open(target, Options{Workers: 2, Seed: seed, Switches: switches})
					if err != nil {
						t.Fatal(err)
					}
					defer db.Close()
					st, err := db.Stream(ctx, StreamOptions{})
					if err != nil {
						t.Fatal(err)
					}
					q := *base
					q.Table = target
					sub, err := st.Subscribe(ctx, &q)
					if err != nil {
						t.Fatal(err)
					}
					if sub.Plan().Mode != ModeCheetah {
						t.Fatalf("plan mode = %v (%s), want cheetah", sub.Plan().Mode, sub.Plan().Reason)
					}
					if switches == 1 && sub.Switch() < 0 {
						t.Fatal("single-switch subscription has no placement")
					}
					// A big catch-up batch, then a stream of small ones.
					half := mix.Visits.NumRows() / 2
					firstHalf, err := mix.Visits.View(0, half)
					if err != nil {
						t.Fatal(err)
					}
					if err := st.AppendBatch(firstHalf); err != nil {
						t.Fatal(err)
					}
					rest, err := mix.Visits.View(half, mix.Visits.NumRows())
					if err != nil {
						t.Fatal(err)
					}
					appendInChunks(t, st, rest, 113)
					if err := sub.Flush(ctx); err != nil {
						t.Fatal(err)
					}

					want, err := engine.ExecDirect(mix.Query(kind))
					if err != nil {
						t.Fatal(err)
					}
					got, ver := sub.Results()
					if ver != uint64(mix.Visits.NumRows()) {
						t.Fatalf("version = %d, want %d", ver, mix.Visits.NumRows())
					}
					if !want.Equal(got) {
						t.Fatalf("standing result diverged\n got: %v\nwant: %v", got, want)
					}
					if tr := sub.Traffic(); tr.EntriesSent == 0 {
						t.Fatal("pruned subscription streamed no entries")
					}
					// The standing program holds switch resources until Close.
					active := 0
					for _, c := range st.Stats() {
						active += c.Active
					}
					if wantActive := 1; switches > 1 {
						if active != switches {
							t.Fatalf("active leases = %d, want %d (one per switch)", active, switches)
						}
					} else if active != wantActive {
						t.Fatalf("active leases = %d, want %d", active, wantActive)
					}
					sub.Close()
					active = 0
					for _, c := range st.Stats() {
						active += c.Active
					}
					if active != 0 {
						t.Fatalf("active leases = %d after Close, want 0", active)
					}
				})
			}
		}
	}
}

// TestStreamWindowedThroughFabric pins the windowed variants on the
// planned path: the fired window equals a from-scratch run over
// exactly the window's rows, through a held (and per-delta reset)
// switch program.
func TestStreamWindowedThroughFabric(t *testing.T) {
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 1000, RankRows: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []int{2, 3, 4, 5} { // TOPN, GBMAX, GBSUM, HAVING
		base := mix.Query(kind)
		t.Run(base.Kind.String(), func(t *testing.T) {
			ctx := streamCtx(t)
			target, err := table.New(mix.Visits.Schema())
			if err != nil {
				t.Fatal(err)
			}
			db, err := Open(target, Options{Workers: 2, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			st, err := db.Stream(ctx, StreamOptions{})
			if err != nil {
				t.Fatal(err)
			}
			q := *base
			q.Table = target
			sub, err := st.SubscribeWindow(ctx, &q, 300, 100)
			if err != nil {
				t.Fatal(err)
			}
			appendInChunks(t, st, mix.Visits, 87)
			if err := sub.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			lo, hi := sub.WindowBounds()
			if hi == 0 || hi-lo != 300 {
				t.Fatalf("window bounds [%d,%d), want a full 300-row window", lo, hi)
			}
			wv, err := mix.Visits.View(int(lo), int(hi))
			if err != nil {
				t.Fatal(err)
			}
			qw := *base
			qw.Table = wv
			want, err := engine.ExecDirect(&qw)
			if err != nil {
				t.Fatal(err)
			}
			got, ver := sub.Results()
			if ver != hi {
				t.Fatalf("result version = %d, want %d", ver, hi)
			}
			if !want.Equal(got) {
				t.Fatalf("window [%d,%d) diverged\n got: %v\nwant: %v", lo, hi, got, want)
			}
		})
	}
}

// TestStreamOversizedFallsBackDirect pins the placement fallback: a
// query whose program can never fit the model subscribes as a direct
// (unpruned) continuous query instead of failing.
func TestStreamOversizedFallsBackDirect(t *testing.T) {
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 600, RankRows: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := streamCtx(t)
	target, err := table.New(mix.Visits.Schema())
	if err != nil {
		t.Fatal(err)
	}
	// A toy model: the planner finds no admissible program.
	model := switchsim.Model{
		Name: "toy", Stages: switchsim.ReservedStages + 1, ALUsPerStage: 1,
		SRAMPerStageBits: 1 << 10, TCAMEntries: 16, MetadataBits: 64,
	}
	db, err := Open(target, Options{Workers: 1, Seed: 3, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st, err := db.Stream(ctx, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := *mix.Query(1) // DISTINCT
	q.Table = target
	sub, err := st.Subscribe(ctx, &q)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Plan().Mode != ModeDirect {
		t.Fatalf("plan mode = %v, want direct fallback", sub.Plan().Mode)
	}
	appendInChunks(t, st, mix.Visits, 200)
	if err := sub.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	want, err := engine.ExecDirect(mix.Query(1))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := sub.Results()
	if !want.Equal(got) {
		t.Fatalf("direct-fallback standing result diverged\n got: %v\nwant: %v", got, want)
	}
}

// TestSessionCloseIdempotentAndDrains pins the Close contract: double
// Close is a no-op, and Close drains streaming subscriptions (leases
// released, appends rejected) and serving handles.
func TestSessionCloseIdempotentAndDrains(t *testing.T) {
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 500, RankRows: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := streamCtx(t)
	target, err := table.New(mix.Visits.Schema())
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(target, Options{Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := db.Stream(ctx, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := db.Serve(ctx, ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := *mix.Query(2)
	q.Table = target
	sub, err := st.Subscribe(ctx, &q)
	if err != nil {
		t.Fatal(err)
	}
	appendInChunks(t, st, mix.Visits, 100)
	if err := sub.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	db.Close()
	db.Close() // idempotent

	if err := st.Append(int64(0)); err == nil {
		t.Fatal("append after session Close should fail")
	}
	if _, err := st.Subscribe(ctx, &q); err == nil {
		t.Fatal("subscribe after session Close should fail")
	}
	for _, c := range st.Stats() {
		if c.Active != 0 {
			t.Fatalf("leases still active after session Close: %+v", c)
		}
	}
	// The drained subscription keeps its last standing result.
	res, _ := sub.Results()
	want, err := engine.ExecDirect(mix.Query(2))
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res) {
		t.Fatal("standing result lost on Close")
	}
	// A submit on the closed serving handle falls back to direct.
	ex, err := sv.Submit(ctx, mix.Query(2))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Plan.Mode != ModeDirect {
		t.Fatalf("post-Close submit mode = %v, want direct", ex.Plan.Mode)
	}
	// Long-lived handles are gone, but one-shot Exec still works.
	if _, err := db.Exec(ctx, mix.Query(2)); err != nil {
		t.Fatal(err)
	}
	// Opening new handles on the closed session fails.
	if _, err := db.Stream(ctx, StreamOptions{}); err == nil {
		t.Fatal("Stream on a closed session should fail")
	}
	if _, err := db.Serve(ctx, ServeOptions{}); err == nil {
		t.Fatal("Serve on a closed session should fail")
	}
}

// TestSessionCloseDuringSubmit pins the race the satellite calls out:
// concurrent Submits racing Session.Close must complete cleanly (pruned
// or direct-fallback), never error or leak.
func TestSessionCloseDuringSubmit(t *testing.T) {
	mix, err := multitenant.NewMix(multitenant.MixConfig{VisitRows: 800, RankRows: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ctx := streamCtx(t)
	db, err := Open(mix.Visits, Options{Workers: 1, Seed: 9, Switches: 2})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := db.Serve(ctx, ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 6, 10
	var wg sync.WaitGroup
	wg.Add(clients)
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := sv.Submit(ctx, mix.Query(c*perClient+i)); err != nil {
					errs <- fmt.Errorf("client %d query %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	// Close mid-flight: in-progress queries finish, the rest fall back.
	time.Sleep(2 * time.Millisecond)
	db.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStreamBackpressureShed pins the shed policy through the session
// wiring: over-backlog appends fail fast and commit nothing.
func TestStreamBackpressureShed(t *testing.T) {
	ctx := streamCtx(t)
	target := table.MustNew(table.Schema{{Name: "v", Type: table.Int64}})
	db, err := Open(target, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st, err := db.Stream(ctx, StreamOptions{Backlog: 8, Shed: true})
	if err != nil {
		t.Fatal(err)
	}
	q, err := db.Select().TopN("v", 4).Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := st.Subscribe(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate faster than the pump can drain — eventually a shed (or
	// every append lands, which is also legal if the pump keeps up; the
	// bound just must never block).
	shed := 0
	for i := 0; i < 5000; i++ {
		if err := st.Append(int64(i)); err != nil {
			shed++
		}
	}
	if err := sub.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := st.Version(); got != uint64(5000-shed) {
		t.Fatalf("version = %d with %d sheds, want %d", got, shed, 5000-shed)
	}
	res, _ := sub.Results()
	if len(res.Rows) != 4 {
		t.Fatalf("standing top-4 has %d rows", len(res.Rows))
	}
}
