package plan

import (
	"context"
	"testing"

	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/workload"
)

// TestExecEquivalenceAllKinds is the acceptance criterion: for every
// QueryKind and several seeds, the session Exec, the direct executor and
// the legacy free-function ExecCheetah return the same result.
func TestExecEquivalenceAllKinds(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(4000, 1))
	if err != nil {
		t.Fatal(err)
	}
	rk := workload.Rankings(3000, 2)
	orders, lineitem, err := workload.TPCHQ3(800, 3)
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range []uint64{1, 7, 42} {
		sUV, err := Open(uv, Options{Workers: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sRK, err := Open(rk, Options{Workers: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sOrd, err := Open(orders, Options{Workers: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}

		cases := []struct {
			label string
			s     *Session
			b     *Builder
		}{
			{"filter", sUV, sUV.Select().
				Where("adRevenue", prune.OpGT, 300_000).
				Where("duration", prune.OpLE, 150).
				WhereLike("userAgent", "agent/0_%")},
			{"distinct", sUV, sUV.Select().Distinct("userAgent")},
			{"topn", sUV, sUV.Select().TopN("adRevenue", 100)},
			{"groupby-max", sUV, sUV.Select().GroupByMax("userAgent", "adRevenue")},
			{"groupby-sum", sUV, sUV.Select().GroupBySum("languageCode", "adRevenue")},
			{"having", sUV, sUV.Select().GroupBySum("languageCode", "adRevenue").Having(500_000)},
			{"join", sOrd, sOrd.Select().Join(lineitem, "o_orderkey", "l_orderkey")},
			{"skyline", sRK, sRK.Select().Skyline("pageRank", "avgDuration")},
		}
		for _, c := range cases {
			q, err := c.b.Build()
			if err != nil {
				t.Fatalf("seed %d %s: build: %v", seed, c.label, err)
			}
			direct, err := engine.ExecDirect(q)
			if err != nil {
				t.Fatalf("seed %d %s: direct: %v", seed, c.label, err)
			}
			legacy, err := engine.ExecCheetah(q, engine.CheetahOptions{Workers: 3, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d %s: legacy ExecCheetah: %v", seed, c.label, err)
			}
			ex, err := c.s.Exec(context.Background(), q)
			if err != nil {
				t.Fatalf("seed %d %s: session Exec: %v", seed, c.label, err)
			}
			if ex.Plan.Mode != ModeCheetah {
				t.Fatalf("seed %d %s: planned %v (%s), want cheetah", seed, c.label, ex.Plan.Mode, ex.Plan.Reason)
			}
			if !direct.Equal(legacy.Result) {
				t.Errorf("seed %d %s: legacy ExecCheetah diverges from direct", seed, c.label)
			}
			if !direct.Equal(ex.Result) {
				t.Errorf("seed %d %s: session Exec diverges from direct", seed, c.label)
			}
			// Block skipping may eliminate the whole scan from metadata
			// alone (this filter matches no rows, and the zone maps prove
			// it); every table row must be accounted for either way —
			// sent through the switch or skipped before encode.
			if ex.Traffic.EntriesSent == 0 && ex.RowsSkipped == 0 {
				t.Errorf("seed %d %s: pruned run reported no traffic (%+v)", seed, c.label, ex.Traffic)
			}
			if ex.Stats.Processed == 0 && ex.RowsSkipped == 0 {
				t.Errorf("seed %d %s: pruner processed nothing and nothing was skipped", seed, c.label)
			}
		}
	}
}
