package plan

import (
	"context"
	"errors"
	"fmt"

	"cheetah/internal/boolexpr"
	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/table"
)

// Builder is the fluent, validating query builder. Each shaping call
// fixes the query kind; mixing incompatible clauses, referencing unknown
// or mistyped columns, or leaving the query empty surfaces as a
// descriptive error from Build — never as a panic or late failure inside
// Exec. The zero Builder is not usable; start from Session.Select.
type Builder struct {
	s       *Session
	q       engine.Query
	kindSet bool
	errs    []error
}

// Select starts a new query over the session's table.
func (s *Session) Select() *Builder {
	b := &Builder{s: s}
	b.q.Table = s.table
	return b
}

// fail records a build error; the first error does not short-circuit so
// Build can report every problem at once.
func (b *Builder) fail(format string, args ...any) *Builder {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
	return b
}

// setKind fixes the query kind, rejecting clause combinations the engine
// has no plan for (e.g. DISTINCT plus TOP N in one query).
func (b *Builder) setKind(k engine.QueryKind, clause string) bool {
	if b.kindSet && b.q.Kind != k {
		b.fail("plan: cannot combine %s with an earlier %s clause", clause, b.q.Kind)
		return false
	}
	b.q.Kind = k
	b.kindSet = true
	return true
}

// Where adds a numeric comparison predicate (col <op> const). Multiple
// Where/WhereLike calls AND together unless Formula overrides the
// combination.
func (b *Builder) Where(col string, op prune.CmpOp, c int64) *Builder {
	if b.setKind(engine.KindFilter, "WHERE") {
		b.q.Predicates = append(b.q.Predicates, engine.FilterPred{Col: col, Op: op, Const: c})
	}
	return b
}

// WhereLike adds a string LIKE predicate with % and _ wildcards. The
// CWorker precomputes it host-side (§4.1); the switch sees one bit.
func (b *Builder) WhereLike(col, pattern string) *Builder {
	if b.setKind(engine.KindFilter, "WHERE LIKE") {
		if pattern == "" {
			b.fail("plan: WHERE LIKE on %q needs a non-empty pattern", col)
			return b
		}
		b.q.Predicates = append(b.q.Predicates, engine.FilterPred{Col: col, Like: pattern})
	}
	return b
}

// Formula overrides the default AND combination of the Where predicates
// with an arbitrary monotone formula; boolexpr.Leaf{V: i} references the
// i-th predicate in call order.
func (b *Builder) Formula(f boolexpr.Expr) *Builder {
	if b.setKind(engine.KindFilter, "a predicate formula") {
		b.q.Formula = f
	}
	return b
}

// Count turns the filter into SELECT COUNT(*): the result is one count
// row.
func (b *Builder) Count() *Builder {
	if b.setKind(engine.KindFilter, "COUNT(*)") {
		b.q.CountOnly = true
	}
	return b
}

// Distinct makes the query SELECT DISTINCT cols.
func (b *Builder) Distinct(cols ...string) *Builder {
	if b.setKind(engine.KindDistinct, "DISTINCT") {
		if len(cols) == 0 {
			b.fail("plan: DISTINCT needs at least one column")
		}
		b.q.DistinctCols = append(b.q.DistinctCols, cols...)
	}
	return b
}

// TopN makes the query SELECT TOP n ... ORDER BY col DESC.
func (b *Builder) TopN(col string, n int) *Builder {
	if b.setKind(engine.KindTopN, "TOP N") {
		b.q.OrderCol = col
		b.q.N = n
	}
	return b
}

// GroupByMax makes the query SELECT key, MAX(val) GROUP BY key.
func (b *Builder) GroupByMax(key, val string) *Builder {
	if b.setKind(engine.KindGroupByMax, "GROUP BY MAX") {
		b.q.KeyCol = key
		b.q.AggCol = val
	}
	return b
}

// GroupBySum makes the query SELECT key, SUM(val) GROUP BY key. Chain
// Having to turn it into the HAVING filter form.
func (b *Builder) GroupBySum(key, val string) *Builder {
	if b.setKind(engine.KindGroupBySum, "GROUP BY SUM") {
		b.q.KeyCol = key
		b.q.AggCol = val
	}
	return b
}

// Having, after GroupBySum, restricts the output to keys whose sum
// exceeds threshold: SELECT key GROUP BY key HAVING SUM(val) > threshold.
func (b *Builder) Having(threshold int64) *Builder {
	if !b.kindSet || b.q.Kind != engine.KindGroupBySum {
		return b.fail("plan: HAVING needs a preceding GroupBySum clause")
	}
	b.q.Kind = engine.KindHaving
	b.q.Threshold = threshold
	return b
}

// Join makes the query an inner join of the session table with right on
// leftKey = rightKey.
func (b *Builder) Join(right *table.Table, leftKey, rightKey string) *Builder {
	if b.setKind(engine.KindJoin, "JOIN") {
		if right == nil {
			b.fail("plan: JOIN needs a right table")
		}
		b.q.Right = right
		b.q.LeftKey = leftKey
		b.q.RightKey = rightKey
	}
	return b
}

// Skyline makes the query SELECT ... SKYLINE OF cols (all dimensions
// maximized).
func (b *Builder) Skyline(cols ...string) *Builder {
	if b.setKind(engine.KindSkyline, "SKYLINE") {
		b.q.SkylineCols = append(b.q.SkylineCols, cols...)
	}
	return b
}

// Build validates the accumulated spec and returns the compiled query.
// Every invalid build — unknown or mistyped column, empty predicate set,
// N ≤ 0, join without a right table, conflicting clauses — returns a
// descriptive error here, before any execution work starts.
func (b *Builder) Build() (*engine.Query, error) {
	errs := b.errs
	if !b.kindSet {
		errs = append(errs, errors.New("plan: empty query: add a Where/Distinct/TopN/GroupByMax/GroupBySum/Join/Skyline clause"))
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	q := b.q // copy: the builder stays reusable for further chaining
	if q.Kind == engine.KindFilter && q.Formula == nil {
		// Default combination: AND of all predicates. Built on the copy
		// so a later Where on the same builder re-derives the formula.
		and := make(boolexpr.And, len(q.Predicates))
		for i := range and {
			and[i] = boolexpr.Leaf{V: i}
		}
		q.Formula = boolexpr.Simplify(and)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &q, nil
}

// Plan builds the query and plans it in one step.
func (b *Builder) Plan() (*Plan, error) {
	q, err := b.Build()
	if err != nil {
		return nil, err
	}
	return b.s.Plan(q)
}

// Exec builds, plans and executes the query in one step.
func (b *Builder) Exec(ctx context.Context) (*Execution, error) {
	q, err := b.Build()
	if err != nil {
		return nil, err
	}
	return b.s.Exec(ctx, q)
}
