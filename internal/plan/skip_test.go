package plan

import (
	"context"
	"strings"
	"testing"

	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/table"
	"cheetah/internal/workload"
)

// TestExecutionSkipStats is the acceptance check: a selective WHERE
// over the bench table reports RowsSkipped > 0 on the Execution, the
// result stays bit-identical to a no-skip direct run, and Explain
// prints the skip plan.
func TestExecutionSkipStats(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(20_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(uv, Options{Workers: 3, Seed: 7, SkipBlockRows: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if uv.SkipIndex() == nil {
		t.Fatal("Open did not build a skip index on the session table")
	}

	q, err := s.Select().Where("adRevenue", prune.OpGT, 300_000).Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := s.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Plan.Skip {
		t.Fatalf("plan did not enable skipping: %s", ex.Plan)
	}
	if !want.Equal(ex.Result) {
		t.Fatal("skipped execution diverges from direct")
	}
	if ex.RowsSkipped == 0 || ex.BlocksSkipped == 0 {
		t.Fatalf("selective WHERE skipped nothing: %+v", ex.SkipStats)
	}
	exp := ex.Explain()
	if !strings.Contains(exp, "skip:") || !strings.Contains(exp, "blocks skipped") {
		t.Fatalf("Explain omits the skip plan:\n%s", exp)
	}
}

// TestDisableSkipping pins the opt-out: no index is built, no plan
// skips, results are unchanged.
func TestDisableSkipping(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(5_000, 3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(uv, Options{Workers: 2, Seed: 1, DisableSkipping: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if uv.SkipIndex() != nil {
		t.Fatal("DisableSkipping still built an index")
	}
	ex, err := s.Select().Where("adRevenue", prune.OpGT, 300_000).Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ex.Plan.Skip || ex.SkipStats != (engine.SkipStats{}) {
		t.Fatalf("disabled session still skipped: %+v", ex.SkipStats)
	}
}

// TestStreamingSkipStats pins skip accounting through a subscription:
// mid-subscription appends grow the tail block, the index refreshes on
// the snapshot path, deltas skip, and the standing result matches a
// from-scratch direct run.
func TestStreamingSkipStats(t *testing.T) {
	src, err := workload.UserVisits(workload.DefaultUserVisits(6_000, 5))
	if err != nil {
		t.Fatal(err)
	}
	target, err := table.New(src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(target, Options{Workers: 2, Seed: 9, SkipBlockRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := streamCtx(t)
	st, err := s.Stream(ctx, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.Select().Where("adRevenue", prune.OpGT, 300_000).Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := st.Subscribe(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Plan().Skip {
		t.Fatalf("subscription plan did not enable skipping: %s", sub.Plan())
	}
	// Batch sizes deliberately misaligned with the 256-row block size:
	// deltas start and end mid-block, and the tail block grows across
	// deltas.
	appendInChunks(t, st, src, 413)
	if err := sub.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	fq := *q
	fq.Table = src
	want, err := engine.ExecDirect(&fq)
	if err != nil {
		t.Fatal(err)
	}
	got, ver := sub.Results()
	if ver != uint64(src.NumRows()) {
		t.Fatalf("version=%d, want %d", ver, src.NumRows())
	}
	if !want.Equal(got) {
		t.Fatal("standing result diverges from from-scratch direct run")
	}
	if sk := sub.Skipped(); sk.RowsSkipped == 0 {
		t.Fatalf("subscription deltas skipped nothing: %+v", sk)
	}
}
