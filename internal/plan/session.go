// Package plan is Cheetah's planning layer: the session API that fronts
// the whole library. A Session binds a table to a switch model and an
// execution configuration; its fluent builder compiles validated
// engine.Query specs; its planner picks the pruning algorithm, derives
// the §5 parameters from Table 2's profiles and the theorems'
// configuration formulas, and admission-checks the program against the
// hardware model; and one Exec entrypoint routes the query to direct,
// batched-Cheetah, or cluster execution behind a single Execution report.
//
// The paper's central claim (§5, §6) is that this layer — not the user —
// owns algorithm choice and tuning; packages engine, prune and switchsim
// stay the low-level substrate for callers that need manual control.
package plan

import (
	"fmt"
	"sync"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/obs"
	"cheetah/internal/stats"
	"cheetah/internal/switchsim"
	"cheetah/internal/table"
)

// Options configures a session. The zero value selects the paper's
// defaults: a Tofino-class switch, one CWorker, in-process transport,
// δ = 1e-4 for randomized guarantees, and a 10G NIC for cost estimates.
type Options struct {
	// Model is the switch hardware the planner admission-checks against.
	// The zero value selects switchsim.Tofino().
	Model switchsim.Model
	// Workers is the CWorker (partition) count; ≤ 0 selects 1. With
	// multiple switches it is the per-shard worker count.
	Workers int
	// Switches is the execution fabric's switch count; ≤ 0 selects 1.
	// With more than one switch, Exec shards the query across the fabric
	// (scatter/gather with a two-level merge) and Serve places whole
	// queries on the least-loaded switch — the paper's rack-scale
	// deployment, one ToR switch per rack.
	Switches int
	// Seed drives fingerprinting and randomized pruner defaults.
	Seed uint64
	// Delta is the failure probability budget δ for randomized pruners
	// (TOP N's Theorem 2/3 configuration); ≤ 0 selects 1e-4.
	Delta float64
	// UseCluster routes single-pass queries over the simulated lossy
	// network with the §7.2 reliability protocol instead of the
	// in-process batched path. Multi-pass kinds (JOIN, HAVING,
	// GROUP-BY-SUM) fall back to in-process execution with a note in the
	// plan's Reason.
	UseCluster bool
	// LossRate injects packet loss on cluster links (UseCluster only).
	LossRate float64
	// RTO overrides the cluster retransmission timeout (UseCluster only).
	RTO time.Duration
	// NICGbps is the NIC speed assumed by completion-time estimates;
	// ≤ 0 selects 10.
	NICGbps float64
	// CostModel overrides the calibrated completion-time model.
	CostModel *engine.CostModel
	// DisableSkipping turns storage-side block skipping off. By default
	// Open builds a block skip index (per-column zone maps + Bloom
	// filters) over the session table, and eligible plans (WHERE, TOP N,
	// JOIN) skip blocks the metadata proves irrelevant before any row is
	// read or encoded. Skipping never changes results — every plan stays
	// bit-identical to an unskipped direct execution — so the knob exists
	// for measurement, not correctness.
	DisableSkipping bool
	// SkipBlockRows is the skip-index block size in rows; ≤ 0 selects
	// table.DefaultBlockRows.
	SkipBlockRows int
	// Metrics, when non-nil, is the operational-metrics registry the
	// session's serving and streaming fabrics record into (admission
	// counters, queue-depth/active-lease gauges, admission-wait and
	// delta-latency histograms). Nil gives each fabric a private
	// registry, reachable via its Fabric().Metrics().
	Metrics *stats.Registry
	// DisableTracing turns query lifecycle tracing off. By default every
	// Exec/Submit/delta execution carries an obs.Trace collecting
	// per-stage spans (plan, admission, skip, encode, prune, merge,
	// per-switch passes), surfaced via Execution.Trace and
	// Execution.ExplainAnalyze. Tracing times whole stages — never
	// per-entry work — and carries nothing back into the execution, so
	// results stay bit-identical either way; the knob exists for
	// measurement, not correctness.
	DisableTracing bool
}

// Session is an open database handle: a table plus the planning context
// every query compiled through it shares. Sessions are cheap; open one
// per table.
type Session struct {
	table *table.Table
	opts  Options
	cost  engine.CostModel

	// mu guards the open serving/streaming handles Close must drain.
	mu       sync.Mutex
	children map[interface{ Close() }]struct{}
	closed   bool
}

// Open validates opts, fills defaults and returns a session over t.
func Open(t *table.Table, opts Options) (*Session, error) {
	if t == nil {
		return nil, fmt.Errorf("plan: Open needs a table")
	}
	if opts.Model.Stages == 0 {
		opts.Model = switchsim.Tofino()
	}
	if err := opts.Model.Validate(); err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Switches <= 0 {
		opts.Switches = 1
	}
	if opts.Delta <= 0 {
		opts.Delta = 1e-4
	}
	if opts.NICGbps <= 0 {
		opts.NICGbps = 10
	}
	cost := engine.DefaultCostModel()
	if opts.CostModel != nil {
		cost = *opts.CostModel
	}
	if !opts.DisableSkipping && t.SkipIndex() == nil && t.RootOffset() == 0 {
		// Best effort: a session over a view (RootOffset ≠ 0, or a
		// zero-offset view whose root owns the data) inherits whatever
		// index its root carries; BuildSkipIndex rejects views.
		_ = t.BuildSkipIndex(opts.SkipBlockRows)
	}
	return &Session{
		table:    t,
		opts:     opts,
		cost:     cost,
		children: make(map[interface{ Close() }]struct{}),
	}, nil
}

// addChild registers an open serving/streaming handle for Close to
// drain; it fails once the session is closed.
func (s *Session) addChild(c interface{ Close() }) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("plan: session is closed")
	}
	s.children[c] = struct{}{}
	return nil
}

// removeChild deregisters a handle that closed on its own.
func (s *Session) removeChild(c interface{ Close() }) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.children, c)
}

// Close shuts the session's serving and streaming handles down:
// registered subscriptions drain their in-flight delta and release
// their switch programs, queued admissions fail over to direct
// execution, and in-flight Submits complete (a Submit racing Close
// falls back to exact direct execution — never an error). One-shot
// Exec/Plan calls keep working on the closed session; Close is about
// the long-lived handles. Idempotent: extra Closes are no-ops, and
// concurrent Closes are safe.
//
// The error contract for callers racing Close, by path:
//
//   - RETRYABLE (the operation may be reissued against another session
//     or after a restart; nothing partial happened):
//     Streaming.Append/AppendBatch fail with stream.ErrClosed — the
//     batch either committed atomically before the close or not at
//     all. Streaming.Subscribe fails with a closed-handle error before
//     registering anything. Network front ends (internal/netserve) map
//     exactly these to their retryable wire error code during a drain.
//   - NEVER AN ERROR: Serving.Submit/SubmitQoS racing Close does not
//     fail because of the close — serve.ErrClosed triggers the exact
//     direct fallback, so the caller gets a correct result either way.
//     The only errors a close-racing SubmitQoS surfaces are the ones
//     its QoS could produce anyway, and of those only
//     serve.ErrDeadline (deadline-based shedding: the query is
//     dropped, not degraded — retry with a fresh deadline if still
//     wanted).
//   - TERMINAL (retrying cannot help): query validation errors and
//     execution failures, unchanged by Close.
//
// TestSessionCloseRaceQoSAndAppend pins this contract under -race.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	kids := make([]interface{ Close() }, 0, len(s.children))
	for c := range s.children {
		kids = append(kids, c)
	}
	s.children = make(map[interface{ Close() }]struct{})
	s.mu.Unlock()
	for _, c := range kids {
		c.Close()
	}
}

// newTrace starts a lifecycle trace for one execution, or returns the
// nil no-op trace when the session disabled tracing — every obs method
// is nil-safe, so instrumentation points need no checks of their own.
func (s *Session) newTrace() *obs.Trace {
	if s.opts.DisableTracing {
		return nil
	}
	return obs.New()
}

// Table returns the session's table.
func (s *Session) Table() *table.Table { return s.table }

// Model returns the switch model the session plans against.
func (s *Session) Model() switchsim.Model { return s.opts.Model }

// Options returns the resolved session options (defaults filled in).
func (s *Session) Options() Options { return s.opts }
