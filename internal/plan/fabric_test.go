package plan

// Tests for the multi-switch session paths: Exec's scatter/gather
// across Options.Switches pipelines, and Serve's placement of whole
// queries on the least-loaded switch.

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/workload"
)

// fabricCases builds one query per kind over shared test tables.
func fabricCases(t *testing.T, db, dbOrd, dbRk *Session, lineitem *Builder) []struct {
	label string
	s     *Session
	b     *Builder
} {
	t.Helper()
	return []struct {
		label string
		s     *Session
		b     *Builder
	}{
		{"filter", db, db.Select().Where("adRevenue", prune.OpGT, 300_000).Where("duration", prune.OpLE, 150)},
		{"distinct", db, db.Select().Distinct("userAgent")},
		{"topn", db, db.Select().TopN("adRevenue", 100)},
		{"groupby-max", db, db.Select().GroupByMax("userAgent", "adRevenue")},
		{"groupby-sum", db, db.Select().GroupBySum("languageCode", "adRevenue")},
		{"having", db, db.Select().GroupBySum("languageCode", "adRevenue").Having(500_000)},
		{"join", dbOrd, lineitem},
		{"skyline", dbRk, dbRk.Select().Skyline("pageRank", "avgDuration")},
	}
}

// TestExecShardedEquivalence: a multi-switch session's Exec must return
// exactly ExecDirect's result for every kind, with per-switch reports.
func TestExecShardedEquivalence(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(3000, 1))
	if err != nil {
		t.Fatal(err)
	}
	rk := workload.Rankings(2000, 2)
	orders, lineitem, err := workload.TPCHQ3(600, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, switches := range []int{2, 4} {
		opts := Options{Workers: 2, Seed: 11, Switches: switches}
		db, err := Open(uv, opts)
		if err != nil {
			t.Fatal(err)
		}
		dbOrd, err := Open(orders, opts)
		if err != nil {
			t.Fatal(err)
		}
		dbRk, err := Open(rk, opts)
		if err != nil {
			t.Fatal(err)
		}
		join := dbOrd.Select().Join(lineitem, "o_orderkey", "l_orderkey")
		for _, c := range fabricCases(t, db, dbOrd, dbRk, join) {
			q, err := c.b.Build()
			if err != nil {
				t.Fatalf("%s: build: %v", c.label, err)
			}
			want, err := engine.ExecDirect(q)
			if err != nil {
				t.Fatal(err)
			}
			ex, err := c.s.Exec(context.Background(), q)
			if err != nil {
				t.Fatalf("%s switches=%d: %v", c.label, switches, err)
			}
			if ex.Plan.Mode != ModeCheetah {
				t.Fatalf("%s switches=%d: planned %v, want cheetah (%s)", c.label, switches, ex.Plan.Mode, ex.Plan.Reason)
			}
			if !want.Equal(ex.Result) {
				t.Fatalf("%s switches=%d: result diverges from direct", c.label, switches)
			}
			if len(ex.PerSwitch) != switches {
				t.Fatalf("%s: %d per-switch reports, want %d", c.label, len(ex.PerSwitch), switches)
			}
			sent := 0
			for _, sw := range ex.PerSwitch {
				sent += sw.Traffic.EntriesSent
				if sw.Util.StagesTotal == 0 {
					t.Fatalf("%s: empty per-switch utilization", c.label)
				}
			}
			if sent != ex.Traffic.EntriesSent {
				t.Fatalf("%s: per-switch traffic sums to %d, aggregate says %d", c.label, sent, ex.Traffic.EntriesSent)
			}
			if !strings.Contains(ex.Plan.Reason, "switches") {
				t.Fatalf("%s: plan reason does not mention the fabric: %q", c.label, ex.Plan.Reason)
			}
			if !strings.Contains(ex.Explain(), "switch 0:") {
				t.Fatalf("%s: Explain misses per-switch lines:\n%s", c.label, ex.Explain())
			}
		}
	}
}

// TestExecShardedCluster routes a single-pass kind over the simulated
// network on every switch of the fabric.
func TestExecShardedCluster(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(2000, 5))
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(uv, Options{
		Workers: 2, Seed: 9, Switches: 3,
		UseCluster: true, LossRate: 0.05, RTO: 8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := db.Select().Distinct("userAgent").Build()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := engine.ExecDirect(q)
	ex, err := db.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Plan.Mode != ModeCluster {
		t.Fatalf("planned %v, want cluster", ex.Plan.Mode)
	}
	if !want.Equal(ex.Result) {
		t.Fatal("sharded cluster execution diverges from direct")
	}
	if len(ex.PerSwitch) != 3 {
		t.Fatalf("%d per-switch reports, want 3", len(ex.PerSwitch))
	}
	if ex.ClusterReport == nil || ex.ClusterReport.EntriesSent != uv.NumRows() {
		t.Fatalf("merged cluster report: %+v", ex.ClusterReport)
	}
}

// TestServeFabricPlacement: with a multi-switch session, concurrent
// Submits spread across switches, results stay exact, and the aggregate
// counters see every admission.
func TestServeFabricPlacement(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(uv, Options{Workers: 1, Seed: 3, Switches: 4})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := db.Serve(context.Background(), ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	if sv.Switches() != 4 {
		t.Fatalf("fabric width %d, want 4", sv.Switches())
	}

	builders := []*Builder{
		db.Select().Distinct("userAgent"),
		db.Select().TopN("adRevenue", 50),
		db.Select().GroupByMax("countryCode", "adRevenue"),
		db.Select().Where("duration", prune.OpGT, 100),
	}
	const rounds = 4
	var mu sync.Mutex
	seenSwitch := map[int]int{}
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for _, b := range builders {
			q, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(q *engine.Query) {
				defer wg.Done()
				want, err := engine.ExecDirect(q)
				if err != nil {
					t.Error(err)
					return
				}
				ex, err := sv.Submit(context.Background(), q)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if !want.Equal(ex.Result) {
					t.Errorf("served result diverges for %v", q.Kind)
					return
				}
				if ex.QueryID == 0 {
					t.Errorf("served execution has no QueryID")
					return
				}
				if ex.Plan.Switches != 1 {
					t.Errorf("served plan sized for %d switches, want 1", ex.Plan.Switches)
				}
				mu.Lock()
				seenSwitch[ex.Switch]++
				mu.Unlock()
			}(q)
		}
	}
	wg.Wait()
	// Placement must stay within the fabric. (Whether load spreads here
	// depends on query overlap — the least-loaded policy itself is
	// pinned deterministically in the fabric package's tests.)
	for sw := range seenSwitch {
		if sw < 0 || sw >= 4 {
			t.Fatalf("placement outside the fabric: %v", seenSwitch)
		}
	}
	st := sv.Stats()
	if st.Admitted != uint64(rounds*len(builders)) {
		t.Fatalf("aggregate Admitted = %d, want %d", st.Admitted, rounds*len(builders))
	}
	if st.Active != 0 || st.Queued != 0 {
		t.Fatalf("leftover load: %+v", st)
	}
	per := sv.StatsPerSwitch()
	if len(per) != 4 {
		t.Fatalf("%d per-switch counters, want 4", len(per))
	}
	var sum uint64
	for _, c := range per {
		sum += c.Admitted
	}
	if sum != st.Admitted {
		t.Fatalf("per-switch counters sum to %d, aggregate says %d", sum, st.Admitted)
	}
	if got := len(sv.UtilizationPerSwitch()); got != 4 {
		t.Fatalf("%d per-switch utilizations, want 4", got)
	}
	if u := sv.Utilization(); u.ALUsUsed != 0 {
		t.Fatalf("fabric not drained: %v", u)
	}
}
