package plan

// This file is the session API's streaming front door: Session.Stream
// opens the session's table as an append-able source, and
// Streaming.Subscribe registers planner-built queries as continuous
// queries. It is the layer between internal/stream (the append log and
// incremental merge state) and the execution substrate: Subscribe plans
// the delta program exactly like Exec would — same candidates, same
// per-switch sizing at the session's fabric width — then admits it on
// the fabric through the existing serve admission and holds the
// lease(s) for the subscription's lifetime, so the standing program
// keeps its switch state across deltas (the DISTINCT cache, TOP N
// minima and GROUP BY maxima it warms on early deltas keep pruning the
// later ones). Each committed delta batch then runs through the batched
// engine — engine.ExecSharded across the fabric when Switches > 1 —
// against only the delta, and the result folds into the standing
// result.
//
// Two deliberate deviations from the one-shot paths:
//
//   - HAVING deltas plan and execute as GROUP BY SUM: the sketch path's
//     candidates-only output cannot be merged incrementally (a key may
//     cross the threshold only in aggregate), so the subscription keeps
//     the full per-key sum map and applies the threshold at the
//     standing result.
//   - JOIN programs reset at each delta: the build side is the delta
//     itself, so the Bloom filters must retrain; the lease is still
//     held across deltas (the switch resources stay reserved for the
//     standing query).

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cheetah/internal/engine"
	"cheetah/internal/fabric"
	"cheetah/internal/prune"
	"cheetah/internal/serve"
	"cheetah/internal/stream"
	"cheetah/internal/switchsim"
	"cheetah/internal/table"
)

// StreamOptions configures a streaming handle.
type StreamOptions struct {
	// Backlog bounds the unprocessed rows buffered ahead of the slowest
	// subscription (0 = unbounded).
	Backlog int
	// Shed makes over-backlog appends fail fast with stream.ErrBacklog
	// instead of blocking until subscriptions drain.
	Shed bool
	// QueueLimit caps each switch's admission wait queue for continuous
	// query placement (0 = unbounded).
	QueueLimit int
}

// Streaming is a live streaming handle over the session's table: an
// append log plus a switch fabric hosting the standing programs of its
// continuous queries. All methods are safe for concurrent use.
type Streaming struct {
	s   *Session
	ing *stream.Ingestor
	fab *fabric.Fabric

	mu     sync.Mutex
	subs   map[*Subscription]struct{}
	closed bool
	once   sync.Once
}

// Stream opens the session's table as a streaming source. The handle
// closes when ctx is done (or on Close); appends and new subscriptions
// then fail, standing subscriptions drain and release their programs.
func (s *Session) Stream(ctx context.Context, opts StreamOptions) (*Streaming, error) {
	pol := stream.Block
	if opts.Shed {
		pol = stream.Shed
	}
	ing, err := stream.NewIngestor(s.table, stream.Config{Backlog: opts.Backlog, OnFull: pol})
	if err != nil {
		return nil, err
	}
	fab, err := fabric.New(fabric.Options{
		Switches:   s.opts.Switches,
		Model:      s.opts.Model,
		QueueLimit: opts.QueueLimit,
	})
	if err != nil {
		return nil, err
	}
	st := &Streaming{s: s, ing: ing, fab: fab, subs: make(map[*Subscription]struct{})}
	if err := s.addChild(st); err != nil {
		fab.Close()
		ing.Close()
		return nil, err
	}
	if ctx != nil {
		context.AfterFunc(ctx, st.Close)
	}
	return st, nil
}

// Session returns the streaming handle's session.
func (st *Streaming) Session() *Session { return st.s }

// Ingest returns the underlying append log, for direct snapshot and
// stats access.
func (st *Streaming) Ingest() *stream.Ingestor { return st.ing }

// Append commits one row (values in schema order).
func (st *Streaming) Append(vals ...any) error { return st.ing.Append(vals...) }

// AppendBatch atomically commits every row of src.
func (st *Streaming) AppendBatch(src *table.Table) error { return st.ing.AppendBatch(src) }

// Version returns the committed row count (the snapshot version).
func (st *Streaming) Version() uint64 { return st.ing.Version() }

// Stats returns each switch's admission counters — the standing-
// program occupancy of the fabric, indexed by switch.
func (st *Streaming) Stats() []serve.Counters { return st.fab.Stats() }

// Subscription is one continuous query registered through the session:
// the stream-layer subscription plus its plan and held switch
// resources. Results/Updates/Wait/Flush are promoted from the embedded
// subscription.
type Subscription struct {
	*stream.Subscription
	st   *Streaming
	plan *Plan
	// leases are the fabric holds backing the standing program: one for
	// a single-switch placement, one per switch for scatter/gather, nil
	// for a direct (unpruned) subscription.
	leases []*serve.Lease
	// swIdx is the placed switch for single-switch placements (-1 for
	// sharded and direct subscriptions).
	swIdx int

	mu      sync.Mutex
	traffic engine.Traffic
	once    sync.Once
}

// Plan returns the plan backing the subscription's delta executions.
// For HAVING subscriptions it is the GROUP BY SUM delta plan (see the
// package comment).
func (ss *Subscription) Plan() *Plan { return ss.plan }

// Switch returns the fabric switch a single-switch subscription was
// placed on, or -1 (sharded subscriptions own a program on every
// switch; direct subscriptions own none).
func (ss *Subscription) Switch() int { return ss.swIdx }

// Traffic returns the cumulative dataplane traffic of the
// subscription's delta executions.
func (ss *Subscription) Traffic() engine.Traffic {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.traffic
}

func (ss *Subscription) addTraffic(t engine.Traffic) {
	ss.mu.Lock()
	ss.traffic.EntriesSent += t.EntriesSent
	ss.traffic.Forwarded += t.Forwarded
	ss.traffic.SecondPassSent += t.SecondPassSent
	ss.traffic.MasterProcessed += t.MasterProcessed
	ss.mu.Unlock()
}

// Close deregisters the continuous query: the stream subscription
// drains its in-flight delta, then the standing program's switch
// resources release. Idempotent.
func (ss *Subscription) Close() {
	ss.once.Do(func() {
		ss.Subscription.Close()
		for _, l := range ss.leases {
			l.Release()
		}
		ss.st.mu.Lock()
		delete(ss.st.subs, ss)
		ss.st.mu.Unlock()
	})
}

// Subscribe registers q as a continuous query: the planner picks and
// sizes the pruning program (per switch at the session's fabric
// width), the fabric admits it — a standing program holds its switch
// state across deltas — and every committed delta batch executes
// incrementally into a standing result that always equals a
// from-scratch run over the full committed prefix. Queries no switch
// can host (and placements shed by the queue limit) run their deltas
// as exact direct executions.
func (st *Streaming) Subscribe(ctx context.Context, q *engine.Query) (*Subscription, error) {
	return st.subscribe(ctx, q, 0, 0)
}

// SubscribeWindow is Subscribe for the windowed variants of the
// aggregate kinds (TOP N, GROUP BY MAX/SUM, HAVING): the standing
// result covers the most recently completed window of `window` rows,
// sliding by `slide` rows with the oldest rows retracted. window ==
// slide is a tumbling window; window must be a multiple of slide.
func (st *Streaming) SubscribeWindow(ctx context.Context, q *engine.Query, window, slide int) (*Subscription, error) {
	return st.subscribe(ctx, q, window, slide)
}

func (st *Streaming) subscribe(ctx context.Context, q *engine.Query, window, slide int) (*Subscription, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st.mu.Lock()
	closed := st.closed
	st.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("plan: streaming handle is closed")
	}
	if q == nil {
		return nil, fmt.Errorf("plan: Subscribe needs a query")
	}
	// HAVING deltas aggregate full per-key sums (GROUP BY SUM program);
	// the threshold applies at the standing result.
	pq := q
	if q.Kind == engine.KindHaving {
		cp := *q
		cp.Kind = engine.KindGroupBySum
		pq = &cp
	}
	p, err := st.s.planFor(pq, st.s.opts.Switches)
	if err != nil {
		return nil, err
	}
	if q.Kind == engine.KindHaving && p.Mode != ModeDirect {
		p.Reason += "; continuous having keeps exact per-key sums (threshold at the standing result)"
	}
	// Streaming always executes deltas in-process through the fabric;
	// the cluster transport has no incremental path.
	if p.Mode == ModeCluster {
		p.Mode = ModeCheetah
		p.Reason += "; streaming executes in-process (cluster transport has no incremental path)"
	}
	ss := &Subscription{st: st, plan: p, swIdx: -1}
	// windowed deltas must not carry switch state across executions: a
	// value pruned by a cache warmed OUTSIDE the window could be part of
	// the window's true result, so every windowed delta exec resets the
	// program(s) first.
	windowed := window != 0 || slide != 0
	var exec stream.DeltaExec
	switch {
	case p.Mode == ModeDirect:
		exec = stream.DirectExec
	case p.Switches > 1:
		exec, err = st.shardedExec(ctx, ss, p, windowed)
	default:
		exec, err = st.placedExec(ctx, ss, p, windowed)
	}
	if err != nil {
		return nil, err
	}
	sub, err := st.ing.Subscribe(q, stream.SubOptions{Exec: exec, Window: window, Slide: slide})
	if err != nil {
		for _, l := range ss.leases {
			l.Release()
		}
		return nil, err
	}
	ss.Subscription = sub
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		ss.Close()
		return nil, fmt.Errorf("plan: streaming handle is closed")
	}
	st.subs[ss] = struct{}{}
	st.mu.Unlock()
	return ss, nil
}

// fallbackDirect reports whether a fabric admission failure means "run
// the deltas unpruned" rather than "fail the subscribe".
func fallbackDirect(err error) bool {
	return errors.Is(err, serve.ErrNeverFits) ||
		errors.Is(err, serve.ErrQueueFull) ||
		errors.Is(err, serve.ErrClosed)
}

// placedExec admits one standing program on the least-loaded switch and
// returns the delta executor running through its lease.
func (st *Streaming) placedExec(ctx context.Context, ss *Subscription, p *Plan, windowed bool) (stream.DeltaExec, error) {
	pruner, err := p.NewPruner()
	if err != nil {
		return nil, err
	}
	placement, err := st.fab.Admit(ctx, pruner)
	if err != nil {
		if fallbackDirect(err) {
			p.Mode = ModeDirect
			p.Reason = fmt.Sprintf("streaming fallback: %v", err)
			return stream.DirectExec, nil
		}
		return nil, err
	}
	ss.leases = []*serve.Lease{placement.Lease}
	ss.swIdx = placement.Switch
	workers, seed := p.Workers, p.Seed
	return func(dq *engine.Query) (*engine.Result, error) {
		resetForDelta([]prune.Pruner{pruner}, windowed)
		run, err := engine.ExecCheetah(dq, engine.CheetahOptions{
			Workers: workers, Pruner: pruner, Seed: seed, Flow: placement.Lease,
		})
		if err != nil {
			return nil, err
		}
		ss.addTraffic(run.Traffic)
		return run.Result, nil
	}, nil
}

// shardedExec admits one standing program per switch and returns the
// delta executor scattering each delta across the fabric.
func (st *Streaming) shardedExec(ctx context.Context, ss *Subscription, p *Plan, windowed bool) (stream.DeltaExec, error) {
	pruners, err := p.NewShardPruners()
	if err != nil {
		return nil, err
	}
	progs := make([]switchsim.Program, len(pruners))
	for i, pr := range pruners {
		progs[i] = pr
	}
	leases, err := st.fab.AdmitShards(ctx, progs)
	if err != nil {
		if fallbackDirect(err) {
			p.Mode = ModeDirect
			p.Reason = fmt.Sprintf("streaming fallback: %v", err)
			return stream.DirectExec, nil
		}
		return nil, err
	}
	ss.leases = leases
	flows := make([]engine.BatchDataplane, len(leases))
	for i, l := range leases {
		flows[i] = l
	}
	shards, workers, seed := p.Switches, p.Workers, p.Seed
	return func(dq *engine.Query) (*engine.Result, error) {
		resetForDelta(pruners, windowed)
		run, err := engine.ExecSharded(dq, engine.ShardedOptions{
			Shards: shards, Workers: workers, Seed: seed, Pruners: pruners, Flows: flows,
		})
		if err != nil {
			return nil, err
		}
		ss.addTraffic(run.Traffic)
		return run.Result, nil
	}, nil
}

// resetForDelta clears switch state before a delta execution where
// reuse would be wrong: always for JOIN (the delta is the build side —
// the filters must retrain), and for every program of a windowed
// subscription (state warmed outside the window must not prune rows
// inside it). Unwindowed single-pass programs deliberately keep their
// state — that is the standing-program payoff.
func resetForDelta(pruners []prune.Pruner, windowed bool) {
	for _, pr := range pruners {
		if _, isJoin := pr.(*prune.Join); isJoin || windowed {
			pr.Reset()
		}
	}
}

// Close shuts the streaming handle down: appends and new subscriptions
// fail, every continuous query drains its in-flight delta and releases
// its standing program, and the fabric closes. Idempotent.
func (st *Streaming) Close() {
	st.once.Do(func() {
		st.mu.Lock()
		st.closed = true
		subs := make([]*Subscription, 0, len(st.subs))
		for ss := range st.subs {
			subs = append(subs, ss)
		}
		st.mu.Unlock()
		st.ing.Close()
		for _, ss := range subs {
			ss.Close()
		}
		st.fab.Close()
		st.s.removeChild(st)
	})
}
