package plan

// This file is the session API's streaming front door: Session.Stream
// opens the session's table as an append-able source, and
// Streaming.Subscribe registers planner-built queries as continuous
// queries. It is the layer between internal/stream (the append log and
// incremental merge state) and the execution substrate: Subscribe plans
// the delta program exactly like Exec would — same candidates, same
// per-switch sizing at the session's fabric width — then admits it on
// the fabric through the existing serve admission and holds the
// lease(s) for the subscription's lifetime, so the standing program
// keeps its switch state across deltas (the DISTINCT cache, TOP N
// minima and GROUP BY maxima it warms on early deltas keep pruning the
// later ones). Each committed delta batch then runs through the batched
// engine — engine.ExecSharded across the fabric when Switches > 1 —
// against only the delta, and the result folds into the standing
// result.
//
// Two deliberate deviations from the one-shot paths:
//
//   - HAVING deltas plan and execute as GROUP BY SUM: the sketch path's
//     candidates-only output cannot be merged incrementally (a key may
//     cross the threshold only in aggregate), so the subscription keeps
//     the full per-key sum map and applies the threshold at the
//     standing result.
//   - JOIN programs reset at each delta: the build side is the delta
//     itself, so the Bloom filters must retrain; the lease is still
//     held across deltas (the switch resources stay reserved for the
//     standing query).
//
// Failure handling (§7.2): a switch death never breaks a subscription —
// the master's merge state is the exactness backstop. A single-switch
// subscription whose switch dies is re-placed on the least-loaded
// survivor before its next delta, warm-rebuilding the replacement
// program from the standing result for the monotone kinds
// (engine.WarmPruner); a death in the middle of a delta discards that
// attempt and redoes the delta (bounded, then exact direct) because
// register state absorbed by a drained program dies with the switch. A
// sharded subscription hands engine.ExecSharded a Failover hook that
// re-places the dead shard the same way. When no switch can host the
// program right now, the delta (alone) runs exact and unpruned and the
// next delta retries — continuous-query results stay bit-identical to a
// from-scratch run throughout.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cheetah/internal/engine"
	"cheetah/internal/fabric"
	"cheetah/internal/obs"
	"cheetah/internal/prune"
	"cheetah/internal/serve"
	"cheetah/internal/stream"
	"cheetah/internal/switchsim"
	"cheetah/internal/table"
)

// StreamOptions configures a streaming handle.
type StreamOptions struct {
	// Backlog bounds the unprocessed rows buffered ahead of the slowest
	// subscription (0 = unbounded).
	Backlog int
	// Shed makes over-backlog appends fail fast with stream.ErrBacklog
	// instead of blocking until subscriptions drain.
	Shed bool
	// QueueLimit caps each switch's admission wait queue for continuous
	// query placement (0 = unbounded).
	QueueLimit int
}

// Streaming is a live streaming handle over the session's table: an
// append log plus a switch fabric hosting the standing programs of its
// continuous queries. All methods are safe for concurrent use.
type Streaming struct {
	s   *Session
	ing *stream.Ingestor
	fab *fabric.Fabric

	mu     sync.Mutex
	subs   map[*Subscription]struct{}
	closed bool
	once   sync.Once
}

// Stream opens the session's table as a streaming source. The handle
// closes when ctx is done (or on Close); appends and new subscriptions
// then fail, standing subscriptions drain and release their programs.
func (s *Session) Stream(ctx context.Context, opts StreamOptions) (*Streaming, error) {
	pol := stream.Block
	if opts.Shed {
		pol = stream.Shed
	}
	ing, err := stream.NewIngestor(s.table, stream.Config{Backlog: opts.Backlog, OnFull: pol})
	if err != nil {
		return nil, err
	}
	fab, err := fabric.New(fabric.Options{
		Switches:   s.opts.Switches,
		Model:      s.opts.Model,
		QueueLimit: opts.QueueLimit,
		Metrics:    s.opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	st := &Streaming{s: s, ing: ing, fab: fab, subs: make(map[*Subscription]struct{})}
	if err := s.addChild(st); err != nil {
		fab.Close()
		ing.Close()
		return nil, err
	}
	if ctx != nil {
		context.AfterFunc(ctx, st.Close)
	}
	return st, nil
}

// Session returns the streaming handle's session.
func (st *Streaming) Session() *Session { return st.s }

// Ingest returns the underlying append log, for direct snapshot and
// stats access.
func (st *Streaming) Ingest() *stream.Ingestor { return st.ing }

// Append commits one row (values in schema order).
func (st *Streaming) Append(vals ...any) error { return st.ing.Append(vals...) }

// AppendBatch atomically commits every row of src.
func (st *Streaming) AppendBatch(src *table.Table) error { return st.ing.AppendBatch(src) }

// Version returns the committed row count (the snapshot version).
func (st *Streaming) Version() uint64 { return st.ing.Version() }

// Stats returns each switch's admission counters — the standing-
// program occupancy of the fabric, indexed by switch.
func (st *Streaming) Stats() []serve.Counters { return st.fab.Stats() }

// Fabric returns the streaming handle's switch fabric, for failure-
// lifecycle control (Fail/Restore/Add) and per-switch access.
func (st *Streaming) Fabric() *fabric.Fabric { return st.fab }

// Subscription is one continuous query registered through the session:
// the stream-layer subscription plus its plan and held switch
// resources. Results/Updates/Wait/Flush are promoted from the embedded
// subscription.
type Subscription struct {
	*stream.Subscription
	st   *Streaming
	plan *Plan

	mu sync.Mutex
	// placements are the fabric holds backing the standing program: one
	// for a single-switch placement, one per switch for scatter/gather,
	// nil for a direct (unpruned) subscription. Entries move between
	// switches when re-placement routes around a failed switch.
	placements []*fabric.Placement
	// swIdx is the placed switch for single-switch placements (-1 for
	// sharded and direct subscriptions).
	swIdx    int
	replaced int
	traffic  engine.Traffic
	skipped  engine.SkipStats
	// lastTrace is the most recently completed delta's lifecycle trace
	// (nil before the first delta, or with tracing disabled). Traces are
	// handed out to callers, so they are never pooled back — dropped
	// references are garbage-collected.
	lastTrace *obs.Trace
	once      sync.Once
}

// Trace returns the lifecycle trace of the most recently completed
// delta execution: the delta span plus the engine stages that ran
// beneath it (encode/prune/merge, per-shard passes, failovers). Nil
// before the first delta completes or when the session disabled
// tracing.
func (ss *Subscription) Trace() *obs.Trace {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.lastTrace
}

// tracedDelta wraps a delta executor body so every delta runs under its
// own trace: a top-level delta span brackets the whole execution
// (redos included) and the completed trace publishes via Trace.
func (ss *Subscription) tracedDelta(inner func(dq *engine.Query, standing func() *engine.Result, tr *obs.Trace) (*engine.Result, error)) stream.DeltaExec {
	return func(dq *engine.Query, standing func() *engine.Result) (*engine.Result, error) {
		clock := engine.StartClock()
		tr := ss.st.s.newTrace()
		tm := tr.Begin(obs.StageDelta, -1)
		res, err := inner(dq, standing, tr)
		if err != nil {
			tm.EndNote("error: " + err.Error())
		} else {
			tm.End(int64(dq.Table.NumRows()), int64(len(res.Rows)))
		}
		// Delta freshness: how long a committed batch took to fold into
		// the standing result (redos and failover re-placements included).
		ss.st.fab.Metrics().Histogram("delta_latency").Observe(clock.Elapsed().Nanoseconds())
		ss.mu.Lock()
		ss.lastTrace = tr
		ss.mu.Unlock()
		return res, err
	}
}

// Plan returns the plan backing the subscription's delta executions.
// For HAVING subscriptions it is the GROUP BY SUM delta plan (see the
// package comment).
func (ss *Subscription) Plan() *Plan { return ss.plan }

// Switch returns the fabric switch a single-switch subscription is
// currently placed on, or -1 (sharded subscriptions own a program on
// every switch; direct subscriptions own none). The value changes when
// re-placement moves the standing program off a failed switch.
func (ss *Subscription) Switch() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.swIdx
}

// Replaced returns how many times the subscription's standing
// program(s) have been re-placed after a switch failure.
func (ss *Subscription) Replaced() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.replaced
}

// Traffic returns the cumulative dataplane traffic of the
// subscription's delta executions.
func (ss *Subscription) Traffic() engine.Traffic {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.traffic
}

func (ss *Subscription) addTraffic(t engine.Traffic) {
	ss.mu.Lock()
	ss.traffic.EntriesSent += t.EntriesSent
	ss.traffic.Forwarded += t.Forwarded
	ss.traffic.SecondPassSent += t.SecondPassSent
	ss.traffic.MasterProcessed += t.MasterProcessed
	ss.mu.Unlock()
}

// Skipped returns the cumulative block-skip statistics of the
// subscription's delta executions: blocks (and their rows) the skip
// index proved irrelevant, so the delta never read or encoded them.
// Zero when the plan did not enable skipping (Plan().Skip).
func (ss *Subscription) Skipped() engine.SkipStats {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.skipped
}

func (ss *Subscription) addSkipped(st engine.SkipStats) {
	ss.mu.Lock()
	ss.skipped.Add(st)
	ss.mu.Unlock()
}

// Close deregisters the continuous query: the stream subscription
// drains its in-flight delta, then the standing program's switch
// resources release. Idempotent.
func (ss *Subscription) Close() {
	ss.once.Do(func() {
		ss.Subscription.Close()
		ss.mu.Lock()
		placements := ss.placements
		ss.placements = nil
		ss.mu.Unlock()
		for _, pl := range placements {
			pl.Release()
		}
		ss.st.mu.Lock()
		delete(ss.st.subs, ss)
		ss.st.mu.Unlock()
	})
}

// Subscribe registers q as a continuous query: the planner picks and
// sizes the pruning program (per switch at the session's fabric
// width), the fabric admits it — a standing program holds its switch
// state across deltas — and every committed delta batch executes
// incrementally into a standing result that always equals a
// from-scratch run over the full committed prefix. Queries no switch
// can host (and placements shed by the queue limit) run their deltas
// as exact direct executions.
func (st *Streaming) Subscribe(ctx context.Context, q *engine.Query) (*Subscription, error) {
	return st.subscribe(ctx, q, 0, 0)
}

// SubscribeWindow is Subscribe for the windowed variants of the
// aggregate kinds (TOP N, GROUP BY MAX/SUM, HAVING): the standing
// result covers the most recently completed window of `window` rows,
// sliding by `slide` rows with the oldest rows retracted. window ==
// slide is a tumbling window; window must be a multiple of slide.
func (st *Streaming) SubscribeWindow(ctx context.Context, q *engine.Query, window, slide int) (*Subscription, error) {
	return st.subscribe(ctx, q, window, slide)
}

func (st *Streaming) subscribe(ctx context.Context, q *engine.Query, window, slide int) (*Subscription, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st.mu.Lock()
	closed := st.closed
	st.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("plan: streaming handle is closed")
	}
	if q == nil {
		return nil, fmt.Errorf("plan: Subscribe needs a query")
	}
	// HAVING deltas aggregate full per-key sums (GROUP BY SUM program);
	// the threshold applies at the standing result.
	pq := q
	if q.Kind == engine.KindHaving {
		cp := *q
		cp.Kind = engine.KindGroupBySum
		pq = &cp
	}
	p, err := st.s.planFor(pq, st.s.opts.Switches)
	if err != nil {
		return nil, err
	}
	if q.Kind == engine.KindHaving && p.Mode != ModeDirect {
		p.Reason += "; continuous having keeps exact per-key sums (threshold at the standing result)"
	}
	// Streaming always executes deltas in-process through the fabric;
	// the cluster transport has no incremental path.
	if p.Mode == ModeCluster {
		p.Mode = ModeCheetah
		p.Reason += "; streaming executes in-process (cluster transport has no incremental path)"
	}
	ss := &Subscription{st: st, plan: p, swIdx: -1}
	// windowed deltas must not carry switch state across executions: a
	// value pruned by a cache warmed OUTSIDE the window could be part of
	// the window's true result, so every windowed delta exec resets the
	// program(s) first.
	windowed := window != 0 || slide != 0
	var exec stream.DeltaExec
	switch {
	case p.Mode == ModeDirect:
		exec = ss.directExec()
	case p.Switches > 1:
		exec, err = st.shardedExec(ctx, ss, p, windowed)
	default:
		exec, err = st.placedExec(ctx, ss, p, windowed)
	}
	if err != nil {
		return nil, err
	}
	sub, err := st.ing.Subscribe(q, stream.SubOptions{Exec: exec, Window: window, Slide: slide})
	if err != nil {
		for _, pl := range ss.placements {
			pl.Release()
		}
		return nil, err
	}
	ss.Subscription = sub
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		ss.Close()
		return nil, fmt.Errorf("plan: streaming handle is closed")
	}
	st.subs[ss] = struct{}{}
	st.mu.Unlock()
	return ss, nil
}

// directExec is the delta executor for unpruned subscriptions: exact
// direct execution of each delta, still consulting the skip index when
// the plan enabled skipping (skipping is storage-side, independent of
// whether a switch program runs).
func (ss *Subscription) directExec() stream.DeltaExec {
	return ss.tracedDelta(func(dq *engine.Query, _ func() *engine.Result, tr *obs.Trace) (*engine.Result, error) {
		tm := tr.Begin(obs.StageScan, -1)
		start := tr.Elapsed()
		if !ss.plan.Skip {
			res, err := engine.ExecDirect(dq)
			if err == nil {
				tm.End(int64(dq.Table.NumRows()), int64(len(res.Rows)))
			}
			return res, err
		}
		res, st, err := engine.ExecDirectSkip(dq)
		if err == nil {
			ss.addSkipped(st)
			tm.End(int64(dq.Table.NumRows()), int64(len(res.Rows)))
			addSkipSpan(tr, start, st)
		}
		return res, err
	})
}

// fallbackDirect reports whether a fabric admission failure means "run
// the deltas unpruned" rather than "fail the subscribe".
// serve.ErrFailed is in the list because a fully dead fabric is exactly
// the §7.2 degraded case: the servers keep results exact on their own.
func fallbackDirect(err error) bool {
	return errors.Is(err, serve.ErrNeverFits) ||
		errors.Is(err, serve.ErrQueueFull) ||
		errors.Is(err, serve.ErrClosed) ||
		errors.Is(err, serve.ErrFailed)
}

// maxDeltaRedos bounds how many times one delta execution is redone
// after mid-delta switch deaths before it degrades to exact direct
// execution for that delta.
const maxDeltaRedos = 3

// replacement builds the successor program for a standing placement
// whose switch died: a fresh instance of the plan's program,
// warm-rebuilt from the standing result for the monotone kinds (an
// unwindowed standing result is a faithful summary of everything the
// lost register state could prune with), admitted non-blocking on the
// least-loaded survivor. Windowed subscriptions always re-admit cold —
// their programs reset every delta anyway.
func (st *Streaming) replacement(p *Plan, dq *engine.Query, standing func() *engine.Result, windowed bool) (*fabric.Placement, prune.Pruner, error) {
	pruner, err := p.NewPruner()
	if err != nil {
		return nil, nil, err
	}
	if !windowed {
		if _, err := engine.WarmPruner(dq, p.Seed, standing(), pruner); err != nil {
			return nil, nil, err
		}
	}
	placement, err := st.fab.TryAdmit(pruner)
	if err != nil {
		return nil, nil, err
	}
	return placement, pruner, nil
}

// noteReplaced retires a dead placement: the failed switch's counters
// record the migration and the (already revoked) lease releases.
func (st *Streaming) noteReplaced(old *fabric.Placement) {
	st.fab.Server(old.Switch).NoteReplaced(old.Tenant())
	old.Release()
}

// placedExec admits one standing program on the least-loaded switch and
// returns the delta executor running through its lease. A dead switch
// is detected before (and after) every delta: the program is re-placed
// on a survivor — warm for the monotone kinds — and a delta whose
// execution crossed the death is redone, because drained register state
// absorbed before the death is lost with the switch.
func (st *Streaming) placedExec(ctx context.Context, ss *Subscription, p *Plan, windowed bool) (stream.DeltaExec, error) {
	pruner, err := p.NewPruner()
	if err != nil {
		return nil, err
	}
	placement, err := st.fab.Admit(ctx, pruner)
	if err != nil {
		if fallbackDirect(err) {
			p.Mode = ModeDirect
			p.Reason = fmt.Sprintf("streaming fallback: %v", err)
			return ss.directExec(), nil
		}
		return nil, err
	}
	ss.mu.Lock()
	ss.placements = []*fabric.Placement{placement}
	ss.swIdx = placement.Switch
	ss.mu.Unlock()
	workers, seed := p.Workers, p.Seed
	// cur/curPruner are only touched by the subscription's pump
	// goroutine (one delta executes at a time); ss.placements mirrors
	// cur under ss.mu for Close and Switch.
	cur, curPruner := placement, pruner
	return ss.tracedDelta(func(dq *engine.Query, standing func() *engine.Result, tr *obs.Trace) (*engine.Result, error) {
		for redo := 0; ; redo++ {
			if cur.Err() != nil {
				npl, npr, rerr := st.replacement(p, dq, standing, windowed)
				if rerr != nil {
					// No survivor can host the program right now: this
					// delta (alone) runs exact and unpruned; the next
					// delta retries re-placement.
					return engine.ExecDirect(dq)
				}
				old := cur
				cur, curPruner = npl, npr
				ss.mu.Lock()
				ss.placements = []*fabric.Placement{npl}
				ss.swIdx = npl.Switch
				ss.replaced++
				ss.mu.Unlock()
				st.noteReplaced(old)
			}
			resetForDelta([]prune.Pruner{curPruner}, windowed)
			passStart := tr.Elapsed()
			run, err := engine.ExecCheetah(dq, engine.CheetahOptions{
				Workers: workers, Pruner: curPruner, Seed: seed, Flow: cur.Lease,
				Skip: p.Skip, Trace: tr, TraceSwitch: cur.Switch,
			})
			if err != nil {
				return nil, err
			}
			if cur.Err() == nil {
				addSkipSpan(tr, passStart, run.Skipped)
				ss.addTraffic(run.Traffic)
				ss.addSkipped(run.Skipped)
				return run.Result, nil
			}
			// The switch died while the delta was streaming through it:
			// rows absorbed into (drained) register state before the death
			// are gone, so the attempt's result cannot be trusted — discard
			// it and redo the delta, degrading to exact direct execution
			// when deaths keep chasing the re-placements.
			tr.Add(obs.Span{
				Stage: obs.StageFailover, Switch: cur.Switch, Attempt: redo,
				Start: passStart, Dur: tr.Elapsed() - passStart,
				Note: "pass discarded: switch died mid-delta",
			})
			if redo >= maxDeltaRedos {
				return engine.ExecDirect(dq)
			}
		}
	}), nil
}

// shardedExec admits one standing program per switch and returns the
// delta executor scattering each delta across the fabric. Shard
// failover is delegated to engine.ExecSharded: the Failover hook
// re-places a dead shard's program on a surviving switch (warm for the
// monotone kinds) and the engine redoes that shard's pass; when no
// survivor has room the engine falls back to master-side execution of
// the shard — exact either way.
func (st *Streaming) shardedExec(ctx context.Context, ss *Subscription, p *Plan, windowed bool) (stream.DeltaExec, error) {
	pruners, err := p.NewShardPruners()
	if err != nil {
		return nil, err
	}
	progs := make([]switchsim.Program, len(pruners))
	for i, pr := range pruners {
		progs[i] = pr
	}
	placements, err := st.fab.AdmitShards(ctx, progs)
	if err != nil {
		if fallbackDirect(err) {
			p.Mode = ModeDirect
			p.Reason = fmt.Sprintf("streaming fallback: %v", err)
			return ss.directExec(), nil
		}
		return nil, err
	}
	ss.mu.Lock()
	ss.placements = placements
	ss.mu.Unlock()
	flows := make([]engine.BatchDataplane, len(placements))
	for i, pl := range placements {
		flows[i] = pl
	}
	shards, workers, seed := p.Switches, p.Workers, p.Seed
	return ss.tracedDelta(func(dq *engine.Query, standing func() *engine.Result, tr *obs.Trace) (*engine.Result, error) {
		// The hook runs on the engine's per-shard goroutines; distinct
		// shards re-place concurrently, so the shared slices and the
		// subscription's placement list update under ss.mu.
		failover := func(shard, attempt int) (prune.Pruner, engine.BatchDataplane, error) {
			npl, npr, rerr := st.replacement(p, dq, standing, windowed)
			if rerr != nil {
				return nil, nil, rerr
			}
			ss.mu.Lock()
			old := ss.placements[shard]
			ss.placements[shard] = npl
			pruners[shard] = npr
			flows[shard] = npl
			ss.replaced++
			ss.mu.Unlock()
			st.noteReplaced(old)
			return npr, npl, nil
		}
		ss.mu.Lock()
		curPruners := append([]prune.Pruner(nil), pruners...)
		curFlows := append([]engine.BatchDataplane(nil), flows...)
		ss.mu.Unlock()
		resetForDelta(curPruners, windowed)
		passStart := tr.Elapsed()
		run, err := engine.ExecSharded(dq, engine.ShardedOptions{
			Shards: shards, Workers: workers, Seed: seed,
			Pruners: curPruners, Flows: curFlows, Failover: failover,
			Skip: p.Skip, Trace: tr,
		})
		if err != nil {
			return nil, err
		}
		addSkipSpan(tr, passStart, run.Skipped)
		ss.addTraffic(run.Traffic)
		ss.addSkipped(run.Skipped)
		return run.Result, nil
	}), nil
}

// resetForDelta clears switch state before a delta execution where
// reuse would be wrong: always for JOIN (the delta is the build side —
// the filters must retrain), and for every program of a windowed
// subscription (state warmed outside the window must not prune rows
// inside it). Unwindowed single-pass programs deliberately keep their
// state — that is the standing-program payoff.
func resetForDelta(pruners []prune.Pruner, windowed bool) {
	for _, pr := range pruners {
		if _, isJoin := pr.(*prune.Join); isJoin || windowed {
			pr.Reset()
		}
	}
}

// Close shuts the streaming handle down: appends and new subscriptions
// fail, every continuous query drains its in-flight delta and releases
// its standing program, and the fabric closes. Idempotent.
func (st *Streaming) Close() {
	st.once.Do(func() {
		st.mu.Lock()
		st.closed = true
		subs := make([]*Subscription, 0, len(st.subs))
		for ss := range st.subs {
			subs = append(subs, ss)
		}
		st.mu.Unlock()
		st.ing.Close()
		for _, ss := range subs {
			ss.Close()
		}
		st.fab.Close()
		st.s.removeChild(st)
	})
}
