package plan

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cheetah/internal/cluster"
	"cheetah/internal/engine"
	"cheetah/internal/obs"
	"cheetah/internal/prune"
	"cheetah/internal/serve"
	"cheetah/internal/switchsim"
)

// Execution is the unified report of one Exec call: the result, the plan
// that produced it, the measured traffic and pruning statistics (zero
// for direct execution), the cluster protocol report when the network
// path ran, and the modelled completion-time estimates.
type Execution struct {
	Plan   *Plan
	Result *engine.Result
	// Traffic counts the pruned path's data movement; zero for
	// ModeDirect.
	Traffic engine.Traffic
	// Stats is the switch program's pruning statistics; zero for
	// ModeDirect.
	Stats prune.Stats
	// SkipStats counts the block skip index's work when the plan enabled
	// skipping (Plan.Skip): BlocksSkipped of BlocksSeen blocks were
	// proven irrelevant by zone maps/Blooms and never read, eliminating
	// RowsSkipped rows before encode. Zero when skipping was off or
	// nothing could be skipped.
	engine.SkipStats
	// ClusterReport is non-nil only for ModeCluster.
	ClusterReport *cluster.Report
	// QueryID is the flow id the serving layer assigned this execution
	// (the §5 Cheetah-header query id); 0 outside a Serving handle.
	QueryID uint32
	// Switch is the fabric switch index a served query was placed on;
	// meaningful only when QueryID is non-zero.
	Switch int
	// PerSwitch reports each switch's traffic and occupancy for a
	// scatter/gather execution (Switches > 1 in the plan), and each
	// fabric switch's serving counters for a served (Serving.Submit)
	// execution; nil for plain single-switch and direct runs.
	PerSwitch []SwitchReport
	// FailedOver counts how many times this execution was redone on a
	// replacement switch after its placed switch died mid-query (§7.2
	// failover); only served executions fail over.
	FailedOver int
	// PipelineUtil is the switch occupancy attributed to this query: the
	// shared pipeline's snapshot at admission under a Serving handle, a
	// dedicated pipeline's occupancy otherwise. Zero for ModeDirect.
	PipelineUtil switchsim.Utilization
	// Estimate is the modelled completion time of the path that ran.
	Estimate engine.Breakdown
	// SparkEstimate is the modelled completion time of the Spark-style
	// baseline on the same data, for comparison (Figure 5's other bar).
	SparkEstimate engine.Breakdown
	// Wall is the measured wall-clock of the whole execution, captured
	// once per call by the engine's shared Stopwatch. For a served query
	// it covers every failover attempt (admission waits and discarded
	// passes included) — never reset per attempt.
	Wall time.Duration

	// trace is the execution's lifecycle trace; nil when the session
	// disabled tracing (Options.DisableTracing).
	trace *obs.Trace
}

// Trace returns the execution's lifecycle trace: per-stage spans from
// planning through admission, switch passes and the master merge. Nil
// when the session disabled tracing.
func (e *Execution) Trace() *obs.Trace { return e.trace }

// SwitchReport is one fabric switch's share of a scatter/gather
// execution: its shard's traffic and the pipeline occupancy of its
// program. For served executions, Serve carries the switch's
// cumulative admission/failure counters at completion time.
type SwitchReport struct {
	Traffic engine.Traffic
	Util    switchsim.Utilization
	Serve   serve.Counters
}

// UnprunedFraction is Forwarded/EntriesSent, Figures 10–11's metric; it
// reports 1 for direct execution (nothing was pruned).
func (e *Execution) UnprunedFraction() float64 {
	if e.Traffic.EntriesSent == 0 {
		return 1
	}
	return float64(e.Traffic.Forwarded) / float64(e.Traffic.EntriesSent)
}

// Explain renders the execution the way EXPLAIN ANALYZE would: the plan,
// the admission outcome, the measured traffic and the modelled times.
func (e *Execution) Explain() string {
	var b strings.Builder
	p := e.Plan
	fmt.Fprintf(&b, "query:   %s\n", p.Query.Kind)
	if p.Mode == ModeDirect {
		fmt.Fprintf(&b, "mode:    direct (single node)\n")
		fmt.Fprintf(&b, "reason:  %s\n", p.Reason)
	} else {
		if p.Switches > 1 {
			fmt.Fprintf(&b, "mode:    %s (%d switches × %d workers, %s fabric)\n",
				p.Mode, p.Switches, p.Workers, p.Model.Name)
		} else {
			fmt.Fprintf(&b, "mode:    %s (%d workers, switch %s)\n", p.Mode, p.Workers, p.Model.Name)
		}
		fmt.Fprintf(&b, "pruner:  %s (%s guarantee) — %s\n", p.PrunerName, p.Guarantee, p.Reason)
		fmt.Fprintf(&b, "switch:  %s\n", p.Profile)
		if e.QueryID != 0 {
			fmt.Fprintf(&b, "queryid: %d (shared pipeline, switch %d)\n", e.QueryID, e.Switch)
		}
		if e.PipelineUtil.StagesTotal != 0 {
			fmt.Fprintf(&b, "util:    %s\n", e.PipelineUtil)
		}
		fmt.Fprintf(&b, "traffic: sent=%d forwarded=%d pruned=%.2f%%\n",
			e.Traffic.EntriesSent, e.Traffic.Forwarded, 100*e.Stats.PruneRate())
		for i, sw := range e.PerSwitch {
			fmt.Fprintf(&b, "  switch %d: sent=%d forwarded=%d util %s\n",
				i, sw.Traffic.EntriesSent, sw.Traffic.Forwarded, sw.Util)
		}
	}
	if p.Skip {
		fmt.Fprintf(&b, "skip:    %d/%d blocks skipped via zone maps + blooms (%d rows never read)\n",
			e.BlocksSkipped, e.BlocksSeen, e.RowsSkipped)
	}
	if e.ClusterReport != nil {
		fmt.Fprintf(&b, "network: delivered=%d retransmits=%d\n",
			e.ClusterReport.Delivered, e.ClusterReport.Retransmissions)
	}
	if e.Result != nil {
		fmt.Fprintf(&b, "result:  %d rows\n", len(e.Result.Rows))
	}
	fmt.Fprintf(&b, "time:    %.3fs modelled (spark baseline %.3fs)\n",
		e.Estimate.Total(), e.SparkEstimate.Total())
	return b.String()
}

// ExplainAnalyze renders the execution the way Explain does, then
// appends what actually happened: the measured wall clock and the
// lifecycle trace's span tree (per-stage timings, per-switch passes,
// failover attempts, stream counts).
func (e *Execution) ExplainAnalyze() string {
	var b strings.Builder
	b.WriteString(e.Explain())
	fmt.Fprintf(&b, "wall:    %s measured\n", e.Wall.Round(time.Microsecond))
	if e.trace == nil {
		b.WriteString("trace:   disabled (Options.DisableTracing)\n")
	} else {
		e.trace.Render(&b)
	}
	return b.String()
}

// addSkipSpan records the skip-index consultation as a zero-duration
// span (consultation time is folded into the pass that consulted it):
// the span carries the rows the metadata eliminated before encode.
func addSkipSpan(tr *obs.Trace, start time.Duration, st engine.SkipStats) {
	if st.BlocksSeen == 0 {
		return
	}
	tr.Add(obs.Span{
		Stage: obs.StageSkip, Switch: -1, Start: start,
		Entries: int64(st.RowsSkipped),
		Note:    fmt.Sprintf("%d/%d blocks skipped", st.BlocksSkipped, st.BlocksSeen),
	})
}

// Exec plans and executes the query through the planned path. It is the
// session API's single execution entrypoint: the same call serves
// direct, batched-Cheetah and cluster execution, and always returns the
// full Execution report. Unless the session disabled tracing, the
// returned execution carries a lifecycle trace whose plan span covers
// the planner call itself.
func (s *Session) Exec(ctx context.Context, q *engine.Query) (*Execution, error) {
	tr := s.newTrace()
	tm := tr.Begin(obs.StagePlan, -1)
	p, err := s.Plan(q)
	if err != nil {
		tr.Release()
		return nil, err
	}
	tm.EndNote(p.Mode.String())
	return s.execPlan(ctx, p, tr)
}

// ExecPlan executes a previously computed plan, allowing one plan to be
// inspected (or rendered) before running and reused across runs. The
// trace of a pre-planned execution has no plan span — planning happened
// outside the call.
func (s *Session) ExecPlan(ctx context.Context, p *Plan) (*Execution, error) {
	return s.execPlan(ctx, p, s.newTrace())
}

// execPlan runs a plan under an already-started trace and stamps the
// execution's Wall once around the whole call — the single wall-clock
// capture point every execution path shares (engine.Stopwatch).
func (s *Session) execPlan(ctx context.Context, p *Plan, tr *obs.Trace) (*Execution, error) {
	clock := engine.StartClock()
	ex, err := s.execPlanModes(ctx, p, tr)
	if err != nil {
		tr.Release()
		return nil, err
	}
	ex.Wall = clock.Elapsed()
	return ex, nil
}

func (s *Session) execPlanModes(ctx context.Context, p *Plan, tr *obs.Trace) (*Execution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ex := &Execution{Plan: p, trace: tr}
	q := p.Query
	switch p.Mode {
	case ModeDirect:
		var res *engine.Result
		var err error
		tm := tr.Begin(obs.StageScan, -1)
		start := tr.Elapsed()
		if p.Skip {
			res, ex.SkipStats, err = engine.ExecDirectSkip(q)
		} else {
			res, err = engine.ExecDirect(q)
		}
		if err != nil {
			return nil, err
		}
		tm.End(int64(queryRows(q)), int64(len(res.Rows)))
		addSkipSpan(tr, start, ex.SkipStats)
		ex.Result = res
		// Direct execution is single-node: all rows on one machine.
		ex.Estimate = s.cost.SparkTime(q.Kind, []int{queryRows(q)}, len(res.Rows), false, s.opts.NICGbps)
	case ModeCheetah:
		if p.Switches > 1 {
			return s.execShardedCheetah(ex, p)
		}
		pruner, err := p.NewPruner()
		if err != nil {
			return nil, err
		}
		ex.PipelineUtil = dedicatedUtil(p.Model, pruner)
		start := tr.Elapsed()
		run, err := engine.ExecCheetah(q, engine.CheetahOptions{
			Workers: p.Workers, Pruner: pruner, Seed: p.Seed, Skip: p.Skip,
			Trace: tr, TraceSwitch: 0,
		})
		if err != nil {
			return nil, err
		}
		addSkipSpan(tr, start, run.Skipped)
		ex.Result = run.Result
		ex.Traffic = run.Traffic
		ex.Stats = run.Stats
		ex.SkipStats = run.Skipped
		ex.Estimate = s.cost.CheetahTime(q.Kind, run.Traffic, s.opts.NICGbps)
	case ModeCluster:
		if p.Switches > 1 {
			return s.execShardedCluster(ex, p)
		}
		pruner, err := p.NewPruner()
		if err != nil {
			return nil, err
		}
		res, rep, err := cluster.Run(q, pruner, cluster.Config{
			Workers:  p.Workers,
			LossRate: s.opts.LossRate,
			Seed:     p.Seed,
			RTO:      s.opts.RTO,
			Model:    p.Model,
		})
		if err != nil {
			return nil, err
		}
		ex.Result = res
		ex.ClusterReport = rep
		ex.PipelineUtil = rep.Util
		ex.Stats = pruner.Stats()
		ex.Traffic = engine.Traffic{
			EntriesSent:     rep.EntriesSent,
			Forwarded:       int(rep.Delivered),
			MasterProcessed: int(rep.Delivered),
		}
		ex.Estimate = s.cost.CheetahTime(q.Kind, ex.Traffic, s.opts.NICGbps)
	default:
		return nil, fmt.Errorf("plan: unknown mode %v", p.Mode)
	}
	// A direct execution ran on one node regardless of the session's
	// fabric width; its baseline is a single rack's workers (matching
	// the serving fallback, which pins Switches to 1).
	sw := p.Switches
	if p.Mode == ModeDirect {
		sw = 1
	}
	ex.SparkEstimate = s.sparkEstimate(q, len(ex.Result.Rows), sw)
	return ex, nil
}

// execShardedCheetah runs the scatter/gather path: one program per
// switch, per-shard streams pruned concurrently, two-level merge at the
// master. The completion-time estimate uses the fabric's bottleneck
// shape — racks stream in parallel (the busiest switch's entries bound
// the worker→switch leg) while the master still touches every
// forwarded entry.
func (s *Session) execShardedCheetah(ex *Execution, p *Plan) (*Execution, error) {
	q := p.Query
	pruners, err := p.NewShardPruners()
	if err != nil {
		return nil, err
	}
	start := ex.trace.Elapsed()
	run, err := engine.ExecSharded(q, engine.ShardedOptions{
		Shards: p.Switches, Workers: p.Workers, Seed: p.Seed, Pruners: pruners,
		Skip: p.Skip, Trace: ex.trace,
	})
	if err != nil {
		return nil, err
	}
	addSkipSpan(ex.trace, start, run.Skipped)
	ex.Result = run.Result
	ex.Traffic = run.Traffic
	ex.Stats = run.Stats
	ex.SkipStats = run.Skipped
	// All N programs are identically configured, so one dedicated-
	// pipeline model covers every switch.
	util := dedicatedUtil(p.Model, pruners[0])
	ex.PerSwitch = make([]SwitchReport, p.Switches)
	for i := range ex.PerSwitch {
		ex.PerSwitch[i] = SwitchReport{Traffic: run.PerSwitch[i], Util: util}
	}
	ex.PipelineUtil = util
	ex.Estimate = s.cost.CheetahTime(q.Kind, fabricBottleneck(run.Traffic, run.PerSwitch), s.opts.NICGbps)
	ex.SparkEstimate = s.sparkEstimate(q, len(ex.Result.Rows), p.Switches)
	return ex, nil
}

// execShardedCluster runs the scatter/gather path over the simulated
// network: one rack (workers + network + pipeline) per switch.
func (s *Session) execShardedCluster(ex *Execution, p *Plan) (*Execution, error) {
	q := p.Query
	pruners, err := p.NewShardPruners()
	if err != nil {
		return nil, err
	}
	res, reps, err := cluster.RunSharded(q, pruners, cluster.Config{
		Workers:  p.Workers,
		LossRate: s.opts.LossRate,
		Seed:     p.Seed,
		RTO:      s.opts.RTO,
		Model:    p.Model,
	}, p.Switches)
	if err != nil {
		return nil, err
	}
	ex.Result = res
	ex.PerSwitch = make([]SwitchReport, p.Switches)
	perTraffic := make([]engine.Traffic, p.Switches)
	merged := &cluster.Report{PrunerName: reps[0].PrunerName, Util: reps[0].Util}
	for i, rep := range reps {
		tr := engine.Traffic{
			EntriesSent:     rep.EntriesSent,
			Forwarded:       int(rep.Delivered),
			MasterProcessed: int(rep.Delivered),
		}
		ex.PerSwitch[i] = SwitchReport{Traffic: tr, Util: rep.Util}
		perTraffic[i] = tr
		ex.Traffic.EntriesSent += tr.EntriesSent
		ex.Traffic.Forwarded += tr.Forwarded
		ex.Traffic.MasterProcessed += tr.MasterProcessed
		merged.EntriesSent += rep.EntriesSent
		merged.Pruned += rep.Pruned
		merged.Delivered += rep.Delivered
		merged.Retransmissions += rep.Retransmissions
		merged.DroppedGaps += rep.DroppedGaps
	}
	ex.ClusterReport = merged
	ex.PipelineUtil = reps[0].Util
	for _, pr := range pruners {
		st := pr.Stats()
		ex.Stats.Processed += st.Processed
		ex.Stats.Pruned += st.Pruned
	}
	ex.Estimate = s.cost.CheetahTime(q.Kind, fabricBottleneck(ex.Traffic, perTraffic), s.opts.NICGbps)
	ex.SparkEstimate = s.sparkEstimate(q, len(ex.Result.Rows), p.Switches)
	return ex, nil
}

// fabricBottleneck reshapes a sharded execution's traffic for the cost
// model: worker→switch legs run in parallel across racks (take the
// busiest switch's sent counts), while forwarded entries all converge
// on the master.
func fabricBottleneck(total engine.Traffic, perSwitch []engine.Traffic) engine.Traffic {
	t := engine.Traffic{
		Forwarded:       total.Forwarded,
		MasterProcessed: total.MasterProcessed,
	}
	for _, sw := range perSwitch {
		if sw.EntriesSent > t.EntriesSent {
			t.EntriesSent = sw.EntriesSent
		}
		if sw.SecondPassSent > t.SecondPassSent {
			t.SecondPassSent = sw.SecondPassSent
		}
	}
	return t
}

// dedicatedUtil models the pipeline occupancy of an exclusively-owned
// switch running just this query's program — the non-serving executions'
// per-query utilization report.
func dedicatedUtil(m switchsim.Model, prog switchsim.Program) switchsim.Utilization {
	pl, err := switchsim.NewPipeline(m)
	if err != nil {
		return switchsim.Utilization{}
	}
	if err := pl.Install(1, prog); err != nil {
		return switchsim.Utilization{}
	}
	return pl.Utilization()
}

// queryRows counts the rows a query touches across its input tables.
func queryRows(q *engine.Query) int {
	rows := q.Table.NumRows()
	if q.Right != nil {
		rows += q.Right.NumRows()
	}
	return rows
}

// sparkEstimate models the Spark-style baseline on the same hardware
// the execution used: the table split evenly across every rack's
// workers at the plan's fabric width (served queries run whole on one
// switch, so their baseline is a single rack's workers), warm run.
func (s *Session) sparkEstimate(q *engine.Query, resultRows, switches int) engine.Breakdown {
	rows := queryRows(q)
	if switches <= 0 {
		switches = 1
	}
	workers := s.opts.Workers * switches
	perWorker := make([]int, workers)
	for i := range perWorker {
		perWorker[i] = rows / workers
		if i < rows%workers {
			perWorker[i]++
		}
	}
	return s.cost.SparkTime(q.Kind, perWorker, resultRows, false, s.opts.NICGbps)
}
