// Package netsim provides the in-memory network used to exercise
// Cheetah's communication protocol under controlled loss. Endpoints are
// named mailboxes connected by a shared Network that applies
// deterministic, seeded per-link loss — so protocol tests reproduce
// exactly across runs, the property the reliability protocol of §7.2 is
// designed around (distinguishing switch-pruned packets from genuinely
// lost ones).
package netsim

import (
	"fmt"
	"sync"

	"cheetah/internal/hashutil"
)

// Message is one frame delivered to an endpoint.
type Message struct {
	From string
	Data []byte
}

// Network connects named endpoints with per-link loss injection.
type Network struct {
	mu        sync.Mutex
	eps       map[string]*Endpoint
	loss      map[[2]string]float64
	rng       uint64
	delivered uint64
	dropped   uint64
	overflow  uint64
}

// New creates a network whose loss decisions derive from seed.
func New(seed uint64) *Network {
	return &Network{
		eps:  make(map[string]*Endpoint),
		loss: make(map[[2]string]float64),
		rng:  seed ^ 0x636865657461686e,
	}
}

// Endpoint creates (or returns) the named endpoint with the given inbox
// capacity. Capacity applies only at creation.
func (n *Network) Endpoint(name string, capacity int) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.eps[name]; ok {
		return ep
	}
	if capacity <= 0 {
		capacity = 1024
	}
	ep := &Endpoint{name: name, inbox: make(chan Message, capacity), net: n}
	n.eps[name] = ep
	return ep
}

// SetLoss sets the drop probability for frames from → to (0 ≤ rate ≤ 1).
func (n *Network) SetLoss(from, to string, rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("netsim: loss rate %v out of [0,1]", rate)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loss[[2]string{from, to}] = rate
	return nil
}

// SetLossBoth sets loss in both directions between a and b.
func (n *Network) SetLossBoth(a, b string, rate float64) error {
	if err := n.SetLoss(a, b, rate); err != nil {
		return err
	}
	return n.SetLoss(b, a, rate)
}

// Stats reports delivered, loss-dropped and overflow-dropped frames.
func (n *Network) Stats() (delivered, dropped, overflow uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered, n.dropped, n.overflow
}

// send routes a frame, applying loss. A full inbox drops the frame
// (counted separately), modelling receiver queue overflow.
func (n *Network) send(from, to string, data []byte) error {
	n.mu.Lock()
	dst, ok := n.eps[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("netsim: unknown endpoint %q", to)
	}
	rate := n.loss[[2]string{from, to}]
	drop := false
	if rate > 0 {
		n.rng = hashutil.SplitMix64(n.rng)
		drop = float64(n.rng>>11)/float64(1<<53) < rate
	}
	if drop {
		n.dropped++
		n.mu.Unlock()
		return nil
	}
	// Copy: senders reuse their serialization buffers.
	cp := make([]byte, len(data))
	copy(cp, data)
	msg := Message{From: from, Data: cp}
	n.mu.Unlock()

	select {
	case dst.inbox <- msg:
		n.mu.Lock()
		n.delivered++
		n.mu.Unlock()
	default:
		n.mu.Lock()
		n.overflow++
		n.mu.Unlock()
	}
	return nil
}

// Endpoint is a named mailbox on a Network.
type Endpoint struct {
	name  string
	inbox chan Message
	net   *Network
}

// Name returns the endpoint's address.
func (e *Endpoint) Name() string { return e.name }

// Send transmits data to the named endpoint, subject to link loss.
// The data slice is copied and may be reused immediately.
func (e *Endpoint) Send(to string, data []byte) error {
	return e.net.send(e.name, to, data)
}

// Inbox returns the receive channel.
func (e *Endpoint) Inbox() <-chan Message { return e.inbox }
