package netsim

import (
	"testing"
)

func TestSendReceive(t *testing.T) {
	n := New(1)
	a := n.Endpoint("a", 4)
	b := n.Endpoint("b", 4)
	if err := a.Send("b", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	msg := <-b.Inbox()
	if msg.From != "a" || len(msg.Data) != 3 || msg.Data[0] != 1 {
		t.Fatalf("got %+v", msg)
	}
	if a.Name() != "a" {
		t.Fatal("Name")
	}
}

func TestSendCopiesData(t *testing.T) {
	n := New(1)
	a := n.Endpoint("a", 4)
	b := n.Endpoint("b", 4)
	buf := []byte{7}
	_ = a.Send("b", buf)
	buf[0] = 9 // sender reuses its buffer
	msg := <-b.Inbox()
	if msg.Data[0] != 7 {
		t.Fatal("payload not copied")
	}
}

func TestUnknownEndpoint(t *testing.T) {
	n := New(1)
	a := n.Endpoint("a", 4)
	if err := a.Send("ghost", []byte{1}); err == nil {
		t.Fatal("send to unknown endpoint accepted")
	}
}

func TestEndpointIdempotent(t *testing.T) {
	n := New(1)
	a1 := n.Endpoint("a", 4)
	a2 := n.Endpoint("a", 99)
	if a1 != a2 {
		t.Fatal("same name returned different endpoints")
	}
}

func TestLossDeterministic(t *testing.T) {
	run := func() (delivered uint64) {
		n := New(42)
		a := n.Endpoint("a", 10000)
		_ = a
		n.Endpoint("b", 10000)
		if err := n.SetLoss("a", "b", 0.3); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			_ = a.Send("b", []byte{byte(i)})
		}
		d, _, _ := n.Stats()
		return d
	}
	d1, d2 := run(), run()
	if d1 != d2 {
		t.Fatalf("loss not deterministic: %d vs %d", d1, d2)
	}
	if d1 > 800 || d1 < 600 {
		t.Fatalf("delivered %d of 1000 at 30%% loss", d1)
	}
}

func TestLossValidation(t *testing.T) {
	n := New(1)
	if err := n.SetLoss("a", "b", 1.5); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
	if err := n.SetLoss("a", "b", -0.1); err == nil {
		t.Fatal("rate -0.1 accepted")
	}
	if err := n.SetLossBoth("a", "b", 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestFullLossDropsEverything(t *testing.T) {
	n := New(3)
	a := n.Endpoint("a", 16)
	b := n.Endpoint("b", 16)
	_ = n.SetLoss("a", "b", 1.0)
	for i := 0; i < 10; i++ {
		_ = a.Send("b", []byte{1})
	}
	select {
	case <-b.Inbox():
		t.Fatal("frame survived 100% loss")
	default:
	}
	_, dropped, _ := n.Stats()
	if dropped != 10 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestOverflowCounted(t *testing.T) {
	n := New(1)
	a := n.Endpoint("a", 4)
	n.Endpoint("tiny", 1)
	for i := 0; i < 5; i++ {
		_ = a.Send("tiny", []byte{1})
	}
	_, _, overflow := n.Stats()
	if overflow != 4 {
		t.Fatalf("overflow = %d, want 4", overflow)
	}
}

func TestLossDirectional(t *testing.T) {
	n := New(9)
	a := n.Endpoint("a", 16)
	b := n.Endpoint("b", 16)
	_ = n.SetLoss("a", "b", 1.0)
	// b → a unaffected.
	_ = b.Send("a", []byte{5})
	msg := <-a.Inbox()
	if msg.Data[0] != 5 {
		t.Fatal("reverse direction affected")
	}
}
