package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestSnapshotOrderingGolden pins Snapshot's deterministic sorted
// order across mixed switch×tenant keys: registration order is
// scrambled on purpose and must not leak into the output.
func TestSnapshotOrderingGolden(t *testing.T) {
	r := NewRegistry()
	// Registered deliberately out of order.
	r.Counter("shed", "switch", "1").Incr(4)
	r.Counter("admitted", "tenant", "beta", "switch", "0").Incr(2)
	r.Counter("admitted", "switch", "1", "tenant", "acme").Incr(3)
	r.Counter("admitted", "switch", "0", "tenant", "acme").Incr(1)
	r.Counter("revoked").Incr(7)
	r.Counter("shed", "switch", "0") // touched, zero-valued: still exported
	want := []Series{
		{Name: "admitted{switch=0,tenant=acme}", Value: 1},
		{Name: "admitted{switch=0,tenant=beta}", Value: 2},
		{Name: "admitted{switch=1,tenant=acme}", Value: 3},
		{Name: "revoked", Value: 7},
		{Name: "shed{switch=0}", Value: 0},
		{Name: "shed{switch=1}", Value: 4},
	}
	got := r.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d series, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot[%d] = %+v, want %+v\nfull: %v", i, got[i], want[i], got)
		}
	}
	// Repeat snapshots are identical — the order is pinned, not lucky.
	again := r.Snapshot()
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("snapshot order must be stable across calls")
		}
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth", "switch", "0")
	if g != r.Gauge("queue_depth", "switch", "0") {
		t.Fatal("gauges must intern")
	}
	g.Set(5)
	g.Add(-2)
	if got := g.Get(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestSeriesTypeCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "switch", "0")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter key must panic")
		}
	}()
	r.Gauge("x", "switch", "0")
}

// exactQuantile is the reference: the q-quantile of the sorted sample.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkQuantiles asserts the histogram's p50/p90/p99 estimates land
// within one bucket of the exact sample quantiles.
func checkQuantiles(t *testing.T, name string, samples []int64) {
	t.Helper()
	var h Histogram
	for _, s := range samples {
		h.Observe(s)
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.50, 0.90, 0.99} {
		est := h.Quantile(q)
		exact := exactQuantile(sorted, q)
		be, bx := histBucket(est), histBucket(exact)
		if be < bx-1 || be > bx+1 {
			t.Fatalf("%s q=%.2f: estimate %d (bucket %d) not within one bucket of exact %d (bucket %d)",
				name, q, est, be, exact, bx)
		}
	}
	if h.Count() != uint64(len(samples)) {
		t.Fatalf("%s: count %d != %d", name, h.Count(), len(samples))
	}
}

// TestHistogramQuantileProperty drives the estimator with three sample
// shapes — uniform, zipf-like heavy tail, bimodal — and pins the
// within-one-bucket guarantee for p50/p90/p99.
func TestHistogramQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc0ffee))
	const n = 20000

	uniform := make([]int64, n)
	for i := range uniform {
		uniform[i] = 1_000 + rng.Int63n(50_000_000) // 1µs .. 50ms
	}
	checkQuantiles(t, "uniform", uniform)

	zipf := make([]int64, n)
	z := rand.NewZipf(rng, 1.2, 1, 1<<22)
	for i := range zipf {
		zipf[i] = 1_000 * int64(1+z.Uint64()) // µs-scale heavy tail
	}
	checkQuantiles(t, "zipf", zipf)

	bimodal := make([]int64, n)
	for i := range bimodal {
		if rng.Intn(10) < 7 {
			bimodal[i] = 5_000 + rng.Int63n(20_000) // fast mode ~5-25µs
		} else {
			bimodal[i] = 80_000_000 + rng.Int63n(40_000_000) // slow mode ~100ms
		}
	}
	checkQuantiles(t, "bimodal", bimodal)
}

// TestHistogramMergeAssociativity pins that merging per-shard
// histograms equals observing the concatenated samples, regardless of
// how the samples were split or the merges ordered.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shards := make([][]int64, 4)
	var all []int64
	for s := range shards {
		for i := 0; i < 5000; i++ {
			v := rng.Int63n(1_000_000_000)
			shards[s] = append(shards[s], v)
			all = append(all, v)
		}
	}
	var whole Histogram
	for _, v := range all {
		whole.Observe(v)
	}
	// Merge left-to-right and pairwise; both must equal the whole.
	var ltr Histogram
	for _, shard := range shards {
		var h Histogram
		for _, v := range shard {
			h.Observe(v)
		}
		ltr.Merge(&h)
	}
	var ab, cd, pair Histogram
	for _, v := range append(append([]int64(nil), shards[0]...), shards[1]...) {
		ab.Observe(v)
	}
	for _, v := range append(append([]int64(nil), shards[2]...), shards[3]...) {
		cd.Observe(v)
	}
	pair.Merge(&ab)
	pair.Merge(&cd)
	for name, h := range map[string]*Histogram{"left-to-right": &ltr, "pairwise": &pair} {
		if h.Buckets() != whole.Buckets() || h.Count() != whole.Count() || h.Sum() != whole.Sum() {
			t.Fatalf("%s merge diverges from concatenated histogram", name)
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	h.Observe(-5) // clamps to 0
	h.Observe(0)
	h.Observe(1000) // bound of bucket 0, inclusive
	if b := h.Buckets(); b[0] != 3 {
		t.Fatalf("bucket 0 = %d, want 3", b[0])
	}
	h.Observe(1001)
	if b := h.Buckets(); b[1] != 1 {
		t.Fatalf("1001ns must land in bucket 1, got %v", b[:3])
	}
	h.Observe(math.MaxInt64) // overflow bucket
	if b := h.Buckets(); b[HistBuckets-1] != 1 {
		t.Fatal("huge observation must land in the +Inf bucket")
	}
	if HistBound(HistBuckets-1) != -1 {
		t.Fatal("last bucket must be +Inf")
	}
}

// TestWritePrometheusGolden pins the exposition bytes: counter, gauge
// and histogram rendering, canonical label ordering, sorted metric
// names, seconds-scale bucket bounds.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("admitted", "tenant", "acme", "switch", "1").Incr(3)
	r.Counter("admitted", "switch", "0", "tenant", "acme").Incr(1)
	r.Gauge("queue_depth", "switch", "0").Set(2)
	h := r.Histogram("admission_wait", "switch", "0")
	h.Observe(1_500)     // bucket 1 (≤2µs)
	h.Observe(3_000_000) // 3ms
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantFrags := []string{
		"# TYPE cheetah_admitted counter\n" +
			`cheetah_admitted{switch="0",tenant="acme"} 1` + "\n" +
			`cheetah_admitted{switch="1",tenant="acme"} 3` + "\n",
		"# TYPE cheetah_admission_wait histogram\n",
		`cheetah_admission_wait_bucket{switch="0",le="1e-06"} 0` + "\n",
		`cheetah_admission_wait_bucket{switch="0",le="2e-06"} 1` + "\n",
		`cheetah_admission_wait_bucket{switch="0",le="+Inf"} 2` + "\n",
		`cheetah_admission_wait_seconds_sum{switch="0"} 0.0030015` + "\n",
		`cheetah_admission_wait_count{switch="0"} 2` + "\n",
		"# TYPE cheetah_queue_depth gauge\n" +
			`cheetah_queue_depth{switch="0"} 2` + "\n",
	}
	for _, frag := range wantFrags {
		if !strings.Contains(out, frag) {
			t.Fatalf("exposition missing:\n%s\ngot:\n%s", frag, out)
		}
	}
	// Metric families appear in sorted name order.
	ia := strings.Index(out, "cheetah_admission_wait")
	ib := strings.Index(out, "cheetah_admitted")
	ic := strings.Index(out, "cheetah_queue_depth")
	if !(ia < ib && ib < ic) {
		t.Fatalf("metric families out of order:\n%s", out)
	}
	// Exposition is byte-stable across calls.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("exposition must be deterministic")
	}
}
