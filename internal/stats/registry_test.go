package stats

import (
	"sync"
	"testing"
)

func TestRegistryInterning(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("admitted", "switch", "0", "tenant", "t1")
	b := r.Counter("admitted", "tenant", "t1", "switch", "0") // label order irrelevant
	if a != b {
		t.Fatal("same (name, labels) must intern to one counter")
	}
	c := r.Counter("admitted", "switch", "1", "tenant", "t1")
	if a == c {
		t.Fatal("different labels must be distinct series")
	}
	a.Incr(2)
	c.Incr(3)
	snap := r.SnapshotMap()
	if snap["admitted{switch=0,tenant=t1}"] != 2 {
		t.Fatalf("snapshot = %v, want series admitted{switch=0,tenant=t1}=2", snap)
	}
	if got := r.Total("admitted"); got != 5 {
		t.Fatalf("Total(admitted) = %d, want 5", got)
	}
	if got := r.Total("adm"); got != 0 {
		t.Fatalf("Total must not match name prefixes, got %d", got)
	}
}

func TestRegistryUnlabeledAndConcurrent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("shed") != r.Counter("shed") {
		t.Fatal("unlabeled counters must intern too")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shed", "switch", "0").Incr(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shed", "switch", "0").Get(); got != 8000 {
		t.Fatalf("concurrent Incr lost updates: %d != 8000", got)
	}
}
