package stats

// This file is the fabric's operational-metrics registry — the
// benthos-metrics shape: a flat namespace of named series, each
// refined by an ordered set of label pairs (switch index, tenant), all
// updates lock-free on the hot path. Three series types share one
// keyspace:
//
//   - Counter: monotonically increasing (admissions, sheds, failovers);
//   - Gauge:   instantaneous level (queue depth, active leases);
//   - Histogram: fixed-bucket latency distribution (admission wait,
//     query latency) with p50/p90/p99 estimation — see metrics.go.
//
// The serving layer counts admissions, sheds, revocations and deadline
// misses per switch and per tenant through one shared Registry; the
// fabric adds failover and re-placement events; netserve observes
// query latency and credit-window stalls; benches, tests and the
// /metrics exposition (expo.go) read it back as deterministic sorted
// snapshots keyed "name{k=v,...}".

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is one monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	n atomic.Uint64
}

// Incr adds delta to the counter.
func (c *Counter) Incr(delta uint64) { c.n.Add(delta) }

// Get returns the counter's current value.
func (c *Counter) Get() uint64 { return c.n.Load() }

// series is the registry's record of one interned key: the parsed
// (name, sorted label pairs) that exposition needs to re-render the
// key with quoting, plus whichever typed instrument the key holds.
type series struct {
	name   string
	labels []string // sorted k, v alternating
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a labeled-series registry. Handles are interned: the
// same (name, labels) pair always returns the same instrument, so hot
// paths resolve a handle once and update without further lookups. A
// key holds exactly one instrument type; asking for a second type
// under the same key panics — that is a wiring bug, not load.
type Registry struct {
	mu     sync.RWMutex
	byKey  map[string]*series
	sorted []string // interned keys, sorted; rebuilt lazily
	dirty  bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series)}
}

// counterKey canonicalizes (name, labels): labels are "k", "v" pairs,
// sorted by key so call-site ordering does not split a series. An odd
// trailing label value is ignored rather than corrupting the key.
func counterKey(name string, labels []string) (string, []string) {
	if len(labels) < 2 {
		return name, nil
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	canon := make([]string, 0, len(pairs)*2)
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", p.k, p.v)
		canon = append(canon, p.k, p.v)
	}
	b.WriteByte('}')
	return b.String(), canon
}

// intern finds or creates the series record for (name, labels).
func (r *Registry) intern(name string, labels []string) *series {
	key, canon := counterKey(name, labels)
	r.mu.RLock()
	s, ok := r.byKey[key]
	r.mu.RUnlock()
	if ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		return s
	}
	s = &series{name: name, labels: canon}
	r.byKey[key] = s
	r.dirty = true
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. Labels are alternating key, value strings.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := r.intern(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		if s.g != nil || s.h != nil {
			panic("stats: series " + name + " already registered with a different type")
		}
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	s := r.intern(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		if s.c != nil || s.h != nil {
			panic("stats: series " + name + " already registered with a different type")
		}
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram for (name, labels), creating it on
// first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	s := r.intern(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		if s.c != nil || s.g != nil {
			panic("stats: series " + name + " already registered with a different type")
		}
		s.h = &Histogram{}
	}
	return s.h
}

// sortedKeys returns every interned key in sorted order, rebuilding
// the cached order only when registration changed it.
func (r *Registry) sortedKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dirty {
		// Build a fresh slice: previously returned orders may still be
		// iterated by readers that have released the lock.
		keys := make([]string, 0, len(r.byKey))
		for k := range r.byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		r.sorted = keys
		r.dirty = false
	}
	return r.sorted
}

// Series is one exported counter sample: the canonical
// "name{k=v,...}" key and its current value.
type Series struct {
	Name  string
	Value uint64
}

// Snapshot returns every counter's current value keyed by its
// canonical series name, sorted by key — the order is deterministic
// and pinned, so exposition and test output are stable. Zero-valued
// series that were touched are included — a registered counter is part
// of the export surface. Gauges and histograms are exposed through
// WritePrometheus, not Snapshot (which predates them and stays a
// counter view).
func (r *Registry) Snapshot() []Series {
	keys := r.sortedKeys()
	out := make([]Series, 0, len(keys))
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, k := range keys {
		if s := r.byKey[k]; s.c != nil {
			out = append(out, Series{Name: k, Value: s.c.Get()})
		}
	}
	return out
}

// SnapshotMap returns the Snapshot as a map for membership-style
// lookups where ordering is irrelevant.
func (r *Registry) SnapshotMap() map[string]uint64 {
	snap := r.Snapshot()
	out := make(map[string]uint64, len(snap))
	for _, s := range snap {
		out[s.Name] = s.Value
	}
	return out
}

// Total sums every counter series of name across all label
// combinations.
func (r *Registry) Total(name string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var sum uint64
	for k, s := range r.byKey {
		if s.c == nil {
			continue
		}
		if k == name || strings.HasPrefix(k, name+"{") {
			sum += s.c.Get()
		}
	}
	return sum
}
