package stats

// This file is the fabric's operational-counters registry — the
// benthos-metrics shape: a flat namespace of named counters, each
// refined by an ordered set of label pairs (switch index, tenant), all
// updates lock-free on the hot path. The serving layer counts
// admissions, sheds, revocations and deadline misses per switch and
// per tenant through one shared Registry; the fabric adds failover and
// re-placement events; benches and tests read it back as a snapshot
// keyed "name{k=v,...}".

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is one monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	n atomic.Uint64
}

// Incr adds delta to the counter.
func (c *Counter) Incr(delta uint64) { c.n.Add(delta) }

// Get returns the counter's current value.
func (c *Counter) Get() uint64 { return c.n.Load() }

// Registry is a labeled-counter registry. Counter handles are interned:
// the same (name, labels) pair always returns the same *Counter, so hot
// paths resolve a handle once and Incr without further lookups.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// counterKey canonicalizes (name, labels): labels are "k", "v" pairs,
// sorted by key so call-site ordering does not split a series. An odd
// trailing label value is ignored rather than corrupting the key.
func counterKey(name string, labels []string) string {
	if len(labels) < 2 {
		return name
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter for (name, labels), creating it on first
// use. Labels are alternating key, value strings.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key := counterKey(name, labels)
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c = &Counter{}
	r.counters[key] = c
	return c
}

// Snapshot returns every counter's current value keyed by its canonical
// "name{k=v,...}" series name. Zero-valued series that were touched are
// included — a registered counter is part of the export surface.
func (r *Registry) Snapshot() map[string]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]uint64, len(r.counters))
	for k, c := range r.counters {
		out[k] = c.Get()
	}
	return out
}

// Total sums every series of name across all label combinations.
func (r *Registry) Total(name string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var sum uint64
	for k, c := range r.counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			sum += c.Get()
		}
	}
	return sum
}
