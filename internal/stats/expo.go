package stats

// Prometheus text exposition for the registry. The output is fully
// deterministic — metric names sorted, series within a name sorted by
// their canonical label key, histogram buckets in bound order — so a
// golden test can pin the exact bytes and scrape diffs stay readable.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MetricPrefix namespaces every exposed series.
const MetricPrefix = "cheetah_"

// promEscape escapes a label value per the Prometheus text format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promLabels renders sorted label pairs as {k="v",...}; extra, when
// non-empty, is appended last as-is (the histogram `le` label — by
// Prometheus convention it trails the series' own labels).
func promLabels(labels []string, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, labels[i], promEscape(labels[i+1]))
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// promBound renders a bucket's upper bound in seconds ("1e-06" …
// "+Inf") — shared bounds, so every process exposes identical `le`s.
func promBound(i int) string {
	ns := HistBound(i)
	if ns < 0 {
		return "+Inf"
	}
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WritePrometheus writes every registered series in the Prometheus
// text exposition format. Counters and gauges expose their value
// directly; histograms expose cumulative `_bucket` series (bounds in
// seconds), a `_seconds_sum` and a `_count`, plus `_p50`/`_p99` gauge
// convenience series so dashboards get quantiles without PromQL.
func (r *Registry) WritePrometheus(out io.Writer) error {
	var w strings.Builder
	keys := r.sortedKeys()
	r.mu.RLock()
	type sample struct {
		key string
		s   *series
	}
	byName := make(map[string][]sample)
	names := make([]string, 0, 8)
	for _, k := range keys {
		s := r.byKey[k]
		if _, ok := byName[s.name]; !ok {
			names = append(names, s.name)
		}
		byName[s.name] = append(byName[s.name], sample{key: k, s: s})
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		samples := byName[name]
		full := MetricPrefix + name
		switch {
		case samples[0].s.c != nil:
			fmt.Fprintf(&w, "# TYPE %s counter\n", full)
			for _, sm := range samples {
				fmt.Fprintf(&w, "%s%s %d\n", full, promLabels(sm.s.labels, ""), sm.s.c.Get())
			}
		case samples[0].s.g != nil:
			fmt.Fprintf(&w, "# TYPE %s gauge\n", full)
			for _, sm := range samples {
				fmt.Fprintf(&w, "%s%s %d\n", full, promLabels(sm.s.labels, ""), sm.s.g.Get())
			}
		case samples[0].s.h != nil:
			fmt.Fprintf(&w, "# TYPE %s histogram\n", full)
			for _, sm := range samples {
				h := sm.s.h
				counts := h.Buckets()
				var cum uint64
				for i, n := range counts {
					cum += n
					le := fmt.Sprintf(`le="%s"`, promBound(i))
					fmt.Fprintf(&w, "%s_bucket%s %d\n", full, promLabels(sm.s.labels, le), cum)
				}
				fmt.Fprintf(&w, "%s_seconds_sum%s %s\n", full,
					promLabels(sm.s.labels, ""),
					strconv.FormatFloat(float64(h.Sum())/1e9, 'g', -1, 64))
				fmt.Fprintf(&w, "%s_count%s %d\n", full, promLabels(sm.s.labels, ""), h.Count())
				fmt.Fprintf(&w, "%s_p50%s %d\n", full, promLabels(sm.s.labels, ""), h.P50())
				fmt.Fprintf(&w, "%s_p99%s %d\n", full, promLabels(sm.s.labels, ""), h.P99())
			}
		}
	}
	_, err := io.WriteString(out, w.String())
	return err
}
