// Package stats implements the mathematical helpers used by Cheetah's
// algorithm-configuration formulas and by the evaluation harness:
// the Lambert W function (optimal TOP N matrix sizing, §5), harmonic
// numbers (Theorem 10's pruning bound), Student-t 95% confidence intervals
// (the paper runs each randomized algorithm five times), and
// Chernoff/binomial tail helpers used by the analytical cross-checks.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// LambertW0 computes the principal branch W0 of the Lambert W function,
// the inverse of g(z) = z·e^z, for x ≥ -1/e. It uses Halley iteration and
// converges to ~1e-12 relative error in a handful of steps.
func LambertW0(x float64) (float64, error) {
	if math.IsNaN(x) || x < -1/math.E {
		return 0, fmt.Errorf("stats: LambertW0 undefined for x = %v", x)
	}
	if x == 0 {
		return 0, nil
	}
	// Initial guess: for large x use log-based asymptotic, otherwise a
	// series start near the branch point.
	var w float64
	switch {
	case x > math.E:
		l1 := math.Log(x)
		l2 := math.Log(l1)
		w = l1 - l2 + l2/l1
	case x > 0:
		w = x / math.E
	default:
		// -1/e <= x <= 0
		p := math.Sqrt(2 * (math.E*x + 1))
		w = -1 + p - p*p/3
	}
	for i := 0; i < 64; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		denom := ew*(w+1) - (w+2)*f/(2*w+2)
		if denom == 0 {
			break
		}
		dw := f / denom
		w -= dw
		if math.Abs(dw) <= 1e-13*(1+math.Abs(w)) {
			return w, nil
		}
	}
	return w, nil
}

// Harmonic returns the n-th harmonic number H_n = sum_{i=1..n} 1/i.
// For large n it switches to the asymptotic expansion, which is accurate
// to well below 1e-10 for n ≥ 64.
func Harmonic(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n < 64 {
		h := 0.0
		for i := 1; i <= n; i++ {
			h += 1 / float64(i)
		}
		return h
	}
	const gamma = 0.5772156649015329
	fn := float64(n)
	return math.Log(fn) + gamma + 1/(2*fn) - 1/(12*fn*fn)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample (n-1) standard deviation of xs.
// It returns 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// tCritical95 holds two-tailed 95% Student-t critical values indexed by
// degrees of freedom (index 0 unused). Values beyond the table fall back
// to the normal approximation 1.96.
var tCritical95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
	2.042,
}

// ConfidenceInterval95 returns the mean and the half-width of the two-tailed
// 95% Student-t confidence interval for the mean of xs, matching the
// methodology in §8.3 ("two-tailed Student t-test to determine the 95%
// confidence intervals" over five runs).
func ConfidenceInterval95(xs []float64) (mean, halfWidth float64) {
	n := len(xs)
	mean = Mean(xs)
	if n < 2 {
		return mean, 0
	}
	df := n - 1
	var tc float64
	if df < len(tCritical95) {
		tc = tCritical95[df]
	} else {
		tc = 1.96
	}
	return mean, tc * StdDev(xs) / math.Sqrt(float64(n))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies xs and does not modify it.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// BinomialTailChernoff returns the Chernoff upper bound (Lemma 2 of the
// paper, Mitzenmacher–Upfal form) on Pr[X > np(1+gamma)] for
// X ~ Bin(n, p) and gamma > 0:
//
//	(e^gamma / (1+gamma)^(1+gamma))^(np)
func BinomialTailChernoff(n int, p, gamma float64) float64 {
	if gamma <= 0 || n <= 0 || p <= 0 {
		return 1
	}
	np := float64(n) * p
	lnBound := np * (gamma - (1+gamma)*math.Log1p(gamma))
	return math.Exp(lnBound)
}

// LogChoose returns ln(n choose k) computed via log-gamma, stable for
// large n.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
