package stats

// Gauges and fixed-bucket latency histograms for the registry. Both
// are lock-free on the observation path: a gauge is one atomic word, a
// histogram is an atomic bucket array indexed by a bit-length
// computation. Buckets are fixed (not adaptive) so histograms recorded
// by independent shards merge exactly — merge of shard histograms ==
// histogram of the concatenated samples — and so the Prometheus
// exposition's `le` bounds are stable across processes.

import (
	"math/bits"
	"sync/atomic"
)

// Gauge is an instantaneous level (queue depth, active leases). The
// zero value is ready to use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Get returns the current level.
func (g *Gauge) Get() int64 { return g.v.Load() }

// HistBuckets is the fixed bucket count: bucket i covers latencies in
// (HistBound(i-1), HistBound(i)] nanoseconds with exponentially
// doubling bounds from 1µs, and the last bucket is the +Inf overflow.
const HistBuckets = 26

// histMaxExp is the largest finite bound's exponent: 1µs << 24 ≈ 16.8s.
const histMaxExp = HistBuckets - 2

// HistBound returns bucket i's inclusive upper bound in nanoseconds;
// the last bucket returns -1 (+Inf).
func HistBound(i int) int64 {
	if i >= HistBuckets-1 {
		return -1
	}
	return 1000 << i
}

// histBucket maps a latency to its bucket index.
func histBucket(ns int64) int {
	if ns <= 1000 {
		return 0
	}
	// Smallest i with ns <= 1000<<i, i.e. the bit length of the
	// microsecond count rounded up.
	i := bits.Len64(uint64(ns-1) / 1000)
	if i > histMaxExp+1 {
		return HistBuckets - 1
	}
	return i
}

// Histogram is a fixed-bucket latency histogram over nanosecond
// observations. The zero value is ready to use; Observe is lock-free
// and all methods are safe for concurrent use.
//
// Quantile estimates interpolate within the bucket containing the
// rank, so an estimate is always within one bucket bound of the exact
// sample quantile — pinned by the property tests.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	sum     atomic.Int64
	count   atomic.Uint64
}

// Observe records one latency in nanoseconds. Negative observations
// clamp to zero (a monotonic clock should never produce them).
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[histBucket(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Merge folds o's observations into h. Fixed shared bucket bounds make
// this exact: merging per-shard histograms equals observing the
// concatenated samples.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.sum.Add(o.sum.Load())
	h.count.Add(o.count.Load())
}

// Buckets returns a snapshot of the per-bucket counts.
func (h *Histogram) Buckets() [HistBuckets]uint64 {
	var out [HistBuckets]uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of the observed
// latencies in nanoseconds: the bucket holding the rank is found by a
// cumulative walk and the estimate interpolates linearly inside it.
// Returns 0 with no observations; ranks landing in the +Inf bucket
// return the largest finite bound.
func (h *Histogram) Quantile(q float64) int64 {
	counts := h.Buckets()
	var total uint64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			if i == HistBuckets-1 {
				return HistBound(histMaxExp)
			}
			lo := int64(0)
			if i > 0 {
				lo = HistBound(i - 1)
			}
			hi := HistBound(i)
			frac := (rank - cum) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum = next
	}
	return HistBound(histMaxExp)
}

// P50, P90 and P99 are the exposition's pinned quantile estimates.
func (h *Histogram) P50() int64 { return h.Quantile(0.50) }

// P90 estimates the 90th-percentile latency in nanoseconds.
func (h *Histogram) P90() int64 { return h.Quantile(0.90) }

// P99 estimates the 99th-percentile latency in nanoseconds.
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }
