package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLambertW0KnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0},
		{math.E, 1},              // W(e) = 1
		{2 * math.E * math.E, 2}, // W(2e^2) = 2
		{-1 / math.E, -1},        // branch point
		{1, 0.5671432904097838},  // omega constant
		{10, 1.7455280027406994},
	}
	for _, c := range cases {
		got, err := LambertW0(c.x)
		if err != nil {
			t.Fatalf("LambertW0(%v): %v", c.x, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("LambertW0(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLambertW0Inverse(t *testing.T) {
	// Property: W(x)·e^{W(x)} == x for x >= -1/e.
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 1e6)
		w, err := LambertW0(x)
		if err != nil {
			return false
		}
		back := w * math.Exp(w)
		return math.Abs(back-x) <= 1e-6*(1+x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLambertW0OutOfDomain(t *testing.T) {
	if _, err := LambertW0(-1); err == nil {
		t.Fatal("expected error for x < -1/e")
	}
	if _, err := LambertW0(math.NaN()); err == nil {
		t.Fatal("expected error for NaN")
	}
}

func TestHarmonicExactSmall(t *testing.T) {
	if got := Harmonic(1); got != 1 {
		t.Fatalf("H_1 = %v", got)
	}
	if got := Harmonic(4); math.Abs(got-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Fatalf("H_4 = %v", got)
	}
	if got := Harmonic(0); got != 0 {
		t.Fatalf("H_0 = %v", got)
	}
}

func TestHarmonicAsymptoticContinuity(t *testing.T) {
	// The exact and asymptotic formulas must agree near the switch point.
	exact := 0.0
	for i := 1; i <= 100; i++ {
		exact += 1 / float64(i)
	}
	if got := Harmonic(100); math.Abs(got-exact) > 1e-9 {
		t.Fatalf("H_100 = %v, want %v", got, exact)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	// Sample stddev of this classic dataset is ~2.138.
	if s := StdDev(xs); math.Abs(s-2.13809) > 1e-4 {
		t.Fatalf("StdDev = %v", s)
	}
	if s := StdDev([]float64{1}); s != 0 {
		t.Fatalf("StdDev single = %v", s)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
}

func TestConfidenceInterval95(t *testing.T) {
	// Five identical runs: zero-width interval.
	m, hw := ConfidenceInterval95([]float64{3, 3, 3, 3, 3})
	if m != 3 || hw != 0 {
		t.Fatalf("CI of constant = (%v, %v)", m, hw)
	}
	// Five runs with known spread: hw = t(4)=2.776 * s/sqrt(5).
	xs := []float64{1, 2, 3, 4, 5}
	m, hw = ConfidenceInterval95(xs)
	if m != 3 {
		t.Fatalf("mean = %v", m)
	}
	want := 2.776 * StdDev(xs) / math.Sqrt(5)
	if math.Abs(hw-want) > 1e-9 {
		t.Fatalf("halfWidth = %v, want %v", hw, want)
	}
	// Single sample: no interval.
	if _, hw := ConfidenceInterval95([]float64{7}); hw != 0 {
		t.Fatal("single sample must have zero half-width")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("median = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Fatalf("p25 = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty = %v", p)
	}
	// Must not mutate input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestBinomialTailChernoff(t *testing.T) {
	// The paper's Theorem 7 proof uses gamma = e-1, giving bound e^{-np}
	// per row: (e^(e-1)/e^e)^np = e^{-np}.
	got := BinomialTailChernoff(1000, 0.01, math.E-1)
	want := math.Exp(-10)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("Chernoff(gamma=e-1) = %v, want %v", got, want)
	}
	// Degenerate inputs return the trivial bound 1.
	if BinomialTailChernoff(0, 0.5, 1) != 1 {
		t.Fatal("n=0 should return 1")
	}
	if BinomialTailChernoff(10, 0.5, 0) != 1 {
		t.Fatal("gamma=0 should return 1")
	}
}

func TestBinomialTailChernoffIsUpperBound(t *testing.T) {
	// Monte-Carlo sanity: empirical tail must not exceed the bound by more
	// than sampling noise for a few configurations.
	cfgs := []struct {
		n     int
		p     float64
		gamma float64
	}{
		{200, 0.05, 1.0},
		{500, 0.02, 2.0},
	}
	rng := uint64(12345)
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11) / float64(1<<53)
	}
	for _, c := range cfgs {
		bound := BinomialTailChernoff(c.n, c.p, c.gamma)
		thresh := float64(c.n) * c.p * (1 + c.gamma)
		const trials = 20000
		exceed := 0
		for t := 0; t < trials; t++ {
			x := 0
			for i := 0; i < c.n; i++ {
				if next() < c.p {
					x++
				}
			}
			if float64(x) > thresh {
				exceed++
			}
		}
		emp := float64(exceed) / trials
		if emp > bound+0.01 {
			t.Errorf("empirical tail %v exceeds Chernoff bound %v for %+v", emp, bound, c)
		}
	}
}

func TestLogChoose(t *testing.T) {
	// C(10,3) = 120.
	if got := math.Exp(LogChoose(10, 3)); math.Abs(got-120) > 1e-6 {
		t.Fatalf("C(10,3) = %v", got)
	}
	if !math.IsInf(LogChoose(5, 6), -1) {
		t.Fatal("C(5,6) should be -inf in log space")
	}
	if got := math.Exp(LogChoose(0, 0)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("C(0,0) = %v", got)
	}
}
