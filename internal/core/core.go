// Package core states the pruning abstraction that is the paper's
// primary contribution (§3) and provides the checker the test suite uses
// to certify implementations against it.
//
// Let Q(D) denote the result of query Q on data D. A pruning algorithm
// A_Q maps D to a subset A_Q(D) ⊆ D such that
//
//	Q(A_Q(D)) = Q(D)            (deterministic guarantee), or
//	Pr[Q(A_Q(D)) ≠ Q(D)] ≤ δ    (probabilistic guarantee, §5).
//
// Pruning decides per entry, online, under switch resource constraints;
// the master completes the query on the survivors exactly as it would
// on the full data. Crucially, every Cheetah algorithm also tolerates
// *supersets*: forwarding extra entries (retransmitted duplicates, false
// negatives of the caches) never changes Q's output — the property the
// §7.2 reliability protocol relies on.
//
// The concrete algorithms live in internal/prune; this package owns only
// the contract and its verification.
package core

import (
	"fmt"

	"cheetah/internal/engine"
	"cheetah/internal/prune"
)

// Violation describes a failed pruning-invariant check.
type Violation struct {
	Query    string
	Expected int // rows in Q(D)
	Got      int // rows in Q(A(D))
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("core: pruning invariant violated for %s: Q(D) has %d rows, Q(A(D)) has %d",
		v.Query, v.Expected, v.Got)
}

// VerifyPruning checks Q(A_Q(D)) = Q(D) for a query: it executes the
// direct path (ground truth) and the pruned path with the given pruner
// (nil selects the query kind's default) and compares canonical results.
// For Randomized pruners a mismatch is a δ-event rather than a bug; the
// returned Violation lets the caller decide.
func VerifyPruning(q *engine.Query, p prune.Pruner, workers int, seed uint64) error {
	want, err := engine.ExecDirect(q)
	if err != nil {
		return fmt.Errorf("core: direct execution: %w", err)
	}
	run, err := engine.ExecCheetah(q, engine.CheetahOptions{Workers: workers, Pruner: p, Seed: seed})
	if err != nil {
		return fmt.Errorf("core: pruned execution: %w", err)
	}
	if !want.Equal(run.Result) {
		return &Violation{Query: q.Kind.String(), Expected: len(want.Rows), Got: len(run.Result.Rows)}
	}
	return nil
}

// VerifySupersetTolerance checks the §7.2 requirement on a single-pass
// query: completing the query on the survivors PLUS extra arbitrary rows
// (simulating retransmitted duplicates of pruned packets) still yields
// Q(D).
func VerifySupersetTolerance(q *engine.Query, extraEvery int, workers int, seed uint64) error {
	want, err := engine.ExecDirect(q)
	if err != nil {
		return err
	}
	entries, err := engine.EncodeEntries(q, workers, seed)
	if err != nil {
		return err
	}
	p, err := engine.DefaultPruner(q, seed)
	if err != nil {
		return err
	}
	var survivors []int
	row := 0
	for _, part := range entries {
		for _, vals := range part {
			id := int(vals[len(vals)-1])
			if p.Process(vals[:len(vals)-1]) == 0 { // switchsim.Forward
				survivors = append(survivors, id)
			} else if extraEvery > 0 && row%extraEvery == 0 {
				// A pruned packet whose retransmission reached the master.
				survivors = append(survivors, id)
			}
			row++
		}
	}
	if dr, ok := p.(prune.Drainer); ok {
		width := len(entries[0][0]) - 1
		for _, e := range dr.Drain() {
			if len(e) > width {
				survivors = append(survivors, int(e[width]))
			}
		}
	}
	got, err := engine.CompleteOnRows(q, survivors)
	if err != nil {
		return err
	}
	if !want.Equal(got) {
		return &Violation{Query: q.Kind.String(), Expected: len(want.Rows), Got: len(got.Rows)}
	}
	return nil
}
