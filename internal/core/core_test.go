package core

import (
	"errors"
	"strings"
	"testing"

	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/workload"
)

func queries(t *testing.T) []*engine.Query {
	t.Helper()
	uv, err := workload.UserVisits(workload.DefaultUserVisits(8000, 3))
	if err != nil {
		t.Fatal(err)
	}
	rank := workload.Rankings(8000, 5)
	if err := rank.Shuffle(7); err != nil {
		t.Fatal(err)
	}
	return []*engine.Query{
		{Kind: engine.KindDistinct, Table: uv, DistinctCols: []string{"userAgent"}},
		{Kind: engine.KindTopN, Table: uv, OrderCol: "adRevenue", N: 100},
		{Kind: engine.KindGroupByMax, Table: uv, KeyCol: "languageCode", AggCol: "adRevenue"},
		{Kind: engine.KindSkyline, Table: rank, SkylineCols: []string{"pageRank", "avgDuration"}},
	}
}

func TestVerifyPruningHolds(t *testing.T) {
	for _, q := range queries(t) {
		if err := VerifyPruning(q, nil, 3, 11); err != nil {
			t.Errorf("%v: %v", q.Kind, err)
		}
	}
}

func TestVerifyPruningDetectsViolation(t *testing.T) {
	// A pruner that is WRONG for this query: DISTINCT pruning applied to
	// TOP N drops duplicate order-by values, but the top-N result is a
	// multiset — duplicates among the top values must survive.
	uv, err := workload.UserVisits(workload.DefaultUserVisits(5000, 9))
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{Kind: engine.KindTopN, Table: uv, OrderCol: "adRevenue", N: 200}
	bad, err := prune.NewDistinct(prune.DistinctConfig{Rows: 4096, Cols: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = VerifyPruning(q, bad, 2, 1)
	if err == nil {
		t.Fatal("under-provisioned pruner passed verification")
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("want *Violation, got %T: %v", err, err)
	}
	if !strings.Contains(v.Error(), "topn") {
		t.Fatalf("violation message: %v", v)
	}
}

func TestVerifySupersetTolerance(t *testing.T) {
	// §7.2: retransmitted duplicates of pruned packets reaching the
	// master never change the output.
	for _, q := range queries(t) {
		if err := VerifySupersetTolerance(q, 7, 3, 13); err != nil {
			t.Errorf("%v: %v", q.Kind, err)
		}
	}
}
