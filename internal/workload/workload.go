// Package workload generates the synthetic datasets used throughout the
// evaluation: Big-Data-benchmark-shaped tables (Rankings, UserVisits —
// Appendix B), TPC-H-Q3-shaped tables, and the raw value streams the
// pruning-rate simulations of Figures 10 and 11 consume. All generators
// are deterministic given a seed.
package workload

import (
	"fmt"
	"math/rand"

	"cheetah/internal/hashutil"
	"cheetah/internal/table"
)

// RankingsSchema matches the benchmark's Rankings table: three columns,
// roughly sorted on pageRank (Appendix B).
func RankingsSchema() table.Schema {
	return table.Schema{
		{Name: "pageURL", Type: table.String},
		{Name: "pageRank", Type: table.Int64},
		{Name: "avgDuration", Type: table.Int64},
	}
}

// Rankings generates n rows roughly sorted on pageRank: ranks ascend
// with bounded random displacement, the property that makes the paper
// shuffle before filter/skyline queries.
func Rankings(n int, seed uint64) *table.Table {
	t := table.MustNew(RankingsSchema())
	t.Grow(n)
	rng := rand.New(rand.NewSource(int64(seed) | 1))
	for i := 0; i < n; i++ {
		rank := int64(i) + rng.Int63n(64) // nearly sorted
		dur := rng.Int63n(60) + 1
		url := fmt.Sprintf("url-%08d.example.com/page", i)
		if err := t.AppendRow(url, rank, dur); err != nil {
			panic(err) // generator bug, not input error
		}
	}
	return t
}

// UserVisitsConfig shapes the UserVisits table.
type UserVisitsConfig struct {
	Rows           int
	DistinctAgents int     // userAgent cardinality (DISTINCT / GROUP BY key)
	Languages      int     // languageCode cardinality (HAVING key)
	DistinctURLs   int     // destURL cardinality (JOIN key universe)
	AgentSkew      float64 // Zipf s-parameter for agent popularity (>1)
	Seed           uint64
}

// DefaultUserVisits sizes the table like a scaled-down benchmark sample.
func DefaultUserVisits(rows int, seed uint64) UserVisitsConfig {
	cfg := UserVisitsConfig{
		Rows:           rows,
		DistinctAgents: 8192,
		Languages:      100,
		DistinctURLs:   rows / 4,
		AgentSkew:      1.3,
		Seed:           seed,
	}
	if cfg.DistinctURLs < 1 {
		cfg.DistinctURLs = 1
	}
	return cfg
}

// UserVisitsSchema matches the benchmark's nine-column UserVisits table.
func UserVisitsSchema() table.Schema {
	return table.Schema{
		{Name: "sourceIP", Type: table.String},
		{Name: "destURL", Type: table.String},
		{Name: "visitDate", Type: table.Int64},
		{Name: "adRevenue", Type: table.Int64},
		{Name: "userAgent", Type: table.String},
		{Name: "countryCode", Type: table.String},
		{Name: "languageCode", Type: table.String},
		{Name: "searchWord", Type: table.String},
		{Name: "duration", Type: table.Int64},
	}
}

// UserVisits generates the table per cfg. Agent popularity is Zipfian so
// DISTINCT/GROUP BY streams carry realistic duplication.
func UserVisits(cfg UserVisitsConfig) (*table.Table, error) {
	if cfg.Rows <= 0 || cfg.DistinctAgents <= 0 || cfg.Languages <= 0 || cfg.DistinctURLs <= 0 {
		return nil, fmt.Errorf("workload: invalid UserVisits config %+v", cfg)
	}
	if cfg.AgentSkew <= 1 {
		cfg.AgentSkew = 1.1
	}
	t := table.MustNew(UserVisitsSchema())
	t.Grow(cfg.Rows)
	rng := rand.New(rand.NewSource(int64(cfg.Seed) | 1))
	zipf := rand.NewZipf(rng, cfg.AgentSkew, 1, uint64(cfg.DistinctAgents-1))
	countries := []string{"US", "DE", "JP", "BR", "IN", "GB", "FR", "NG", "CN", "AU"}
	for i := 0; i < cfg.Rows; i++ {
		agent := fmt.Sprintf("agent/%06d (Cheetah; rv:%d)", zipf.Uint64(), i%7)
		lang := fmt.Sprintf("lang-%03d", rng.Intn(cfg.Languages))
		url := fmt.Sprintf("url-%08d.example.com/page", rng.Intn(cfg.DistinctURLs))
		ip := fmt.Sprintf("10.%d.%d.%d", rng.Intn(256), rng.Intn(256), rng.Intn(256))
		err := t.AppendRow(
			ip,
			url,
			int64(20190101+rng.Intn(365)),
			rng.Int63n(10_000), // adRevenue in cents
			agent,
			countries[rng.Intn(len(countries))],
			lang,
			fmt.Sprintf("word-%04d", rng.Intn(5000)),
			rng.Int63n(600)+1,
		)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// TPCHOrdersSchema is the Q3-relevant projection of TPC-H orders.
func TPCHOrdersSchema() table.Schema {
	return table.Schema{
		{Name: "o_orderkey", Type: table.Int64},
		{Name: "o_custkey", Type: table.Int64},
		{Name: "o_orderdate", Type: table.Int64},
		{Name: "o_shippriority", Type: table.Int64},
	}
}

// TPCHLineItemSchema is the Q3-relevant projection of TPC-H lineitem.
func TPCHLineItemSchema() table.Schema {
	return table.Schema{
		{Name: "l_orderkey", Type: table.Int64},
		{Name: "l_extendedprice", Type: table.Int64},
		{Name: "l_discount", Type: table.Int64},
		{Name: "l_shipdate", Type: table.Int64},
	}
}

// TPCHQ3 generates orders and lineitem tables shaped like TPC-H Q3's
// inputs: every lineitem references an order, ~4 lineitems per order,
// and date columns that Q3's filters select on.
func TPCHQ3(orders int, seed uint64) (ordersT, lineitemT *table.Table, err error) {
	if orders <= 0 {
		return nil, nil, fmt.Errorf("workload: orders count %d must be positive", orders)
	}
	rng := rand.New(rand.NewSource(int64(seed) | 1))
	ot := table.MustNew(TPCHOrdersSchema())
	ot.Grow(orders)
	for i := 0; i < orders; i++ {
		err := ot.AppendInt64Row(
			int64(i+1),
			rng.Int63n(int64(orders/10+1))+1,
			int64(19950101+rng.Intn(400)),
			rng.Int63n(5),
		)
		if err != nil {
			return nil, nil, err
		}
	}
	lt := table.MustNew(TPCHLineItemSchema())
	lines := orders * 4
	lt.Grow(lines)
	for i := 0; i < lines; i++ {
		err := lt.AppendInt64Row(
			rng.Int63n(int64(orders))+1,
			rng.Int63n(100_000)+1,
			rng.Int63n(10),
			int64(19950101+rng.Intn(400)),
		)
		if err != nil {
			return nil, nil, err
		}
	}
	return ot, lt, nil
}

// DistinctStream generates a random-order stream of m entries drawn from
// d distinct values, each value appearing m/d times (±1) — the stream
// model of Theorem 1/8.
func DistinctStream(m, distinct int, seed uint64) []uint64 {
	vals := make([]uint64, m)
	for i := range vals {
		vals[i] = uint64(i % distinct)
	}
	shuffleU64(vals, seed)
	return vals
}

// UniformStream generates m distinct values 1..m in random order — the
// TOP N stream model of Theorem 3/10.
func UniformStream(m int, seed uint64) []int64 {
	vals := make([]int64, m)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	s := seed
	for i := m - 1; i > 0; i-- {
		s = hashutil.SplitMix64(s)
		j := int(hashutil.ReduceFull(s, uint64(i+1)))
		vals[i], vals[j] = vals[j], vals[i]
	}
	return vals
}

// Points2D generates m independent 2-D points with the given coordinate
// ranges (SKYLINE's evaluation data; ranges deliberately skewed to show
// the Sum-vs-APH gap).
func Points2D(m int, maxX, maxY uint64, seed uint64) [][]uint64 {
	pts := make([][]uint64, m)
	s := seed
	for i := range pts {
		s = hashutil.SplitMix64(s)
		x := s % maxX
		s = hashutil.SplitMix64(s)
		y := s % maxY
		pts[i] = []uint64{x, y}
	}
	return pts
}

// ZipfPoints2D generates m heavy-tailed 2-D points: most coordinates are
// small with occasional large values (Zipf-shaped), so the Pareto front
// is carried by a few strong points — the regime where SKYLINE's
// replacement heuristics shine and arbitrary baseline points do not.
func ZipfPoints2D(m int, maxX, maxY uint64, skew float64, seed uint64) [][]uint64 {
	if skew <= 1 {
		skew = 1.1
	}
	rng := rand.New(rand.NewSource(int64(seed) | 1))
	zx := rand.NewZipf(rng, skew, 1, maxX-1)
	zy := rand.NewZipf(rng, skew, 1, maxY-1)
	pts := make([][]uint64, m)
	for i := range pts {
		pts[i] = []uint64{zx.Uint64(), zy.Uint64()}
	}
	return pts
}

// CorrelatedPoints2D generates m points on a noisy diagonal band:
// y ≈ x·(maxY/maxX) + noise. Correlated dimensions with very different
// ranges mirror the benchmark's (pageRank, avgDuration) skyline inputs
// and produce the paper's heuristic ordering (APH ≈ Sum ≪ Baseline).
func CorrelatedPoints2D(m int, maxX, maxY, noise uint64, seed uint64) [][]uint64 {
	if maxX < 2 {
		maxX = 2
	}
	ratio := maxY / maxX
	if ratio < 1 {
		ratio = 1
	}
	pts := make([][]uint64, m)
	s := seed
	for i := range pts {
		s = hashutil.SplitMix64(s)
		x := s % maxX
		s = hashutil.SplitMix64(s)
		var n uint64
		if noise > 0 {
			n = s % noise
		}
		pts[i] = []uint64{x, x*ratio + n}
	}
	return pts
}

// ZipfKeys generates m keys from a Zipf(skew) distribution over n keys —
// GROUP BY / HAVING key streams.
func ZipfKeys(m int, skew float64, n uint64, seed uint64) []uint64 {
	if skew <= 1 {
		skew = 1.1
	}
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(int64(seed) | 1))
	zipf := rand.NewZipf(rng, skew, 1, n-1)
	keys := make([]uint64, m)
	for i := range keys {
		keys[i] = zipf.Uint64()
	}
	return keys
}

// JoinKeyStreams generates two key streams with `overlap` shared keys
// plus per-side unique keys, shuffled.
func JoinKeyStreams(overlap, onlyA, onlyB int, seed uint64) (a, b []uint64) {
	s := seed
	next := func() uint64 { s = hashutil.SplitMix64(s); return s }
	for i := 0; i < overlap; i++ {
		k := next()
		a = append(a, k)
		b = append(b, k)
	}
	for i := 0; i < onlyA; i++ {
		a = append(a, next())
	}
	for i := 0; i < onlyB; i++ {
		b = append(b, next())
	}
	shuffleU64(a, seed^0xaaaa)
	shuffleU64(b, seed^0xbbbb)
	return a, b
}

func shuffleU64(vals []uint64, seed uint64) {
	s := seed
	for i := len(vals) - 1; i > 0; i-- {
		s = hashutil.SplitMix64(s)
		j := int(hashutil.ReduceFull(s, uint64(i+1)))
		vals[i], vals[j] = vals[j], vals[i]
	}
}
