package multitenant

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"cheetah/internal/engine"
)

func testMix(t *testing.T) *Mix {
	t.Helper()
	m, err := NewMix(MixConfig{VisitRows: 2000, RankRows: 1500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMixCoversAllKindsAndValidates(t *testing.T) {
	m := testMix(t)
	seen := make(map[engine.QueryKind]bool)
	for i := 0; i < NumKinds; i++ {
		q := m.Query(i)
		if err := q.Validate(); err != nil {
			t.Errorf("query %d (%s): %v", i, q.Kind, err)
		}
		if seen[q.Kind] {
			t.Errorf("query %d repeats kind %s within one cycle", i, q.Kind)
		}
		seen[q.Kind] = true
	}
	if len(seen) != NumKinds {
		t.Fatalf("one cycle covers %d kinds, want %d", len(seen), NumKinds)
	}
}

func TestMixDeterministicAndJittered(t *testing.T) {
	m := testMix(t)
	a, b := m.Query(2), m.Query(2)
	if a.Kind != engine.KindTopN || a.N != b.N {
		t.Fatalf("query 2 not deterministic: %v/%d vs %v/%d", a.Kind, a.N, b.Kind, b.N)
	}
	// The next cycle's TOP N instance must differ in its parameter.
	if c := m.Query(2 + NumKinds); c.N == a.N {
		t.Fatalf("no parameter jitter across cycles: N=%d twice", a.N)
	}
}

func TestPoissonArrivals(t *testing.T) {
	const n, lambda = 2000, 50.0
	a := PoissonArrivals(n, lambda, 99)
	b := PoissonArrivals(n, lambda, 99)
	var prev time.Duration
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d not deterministic", i)
		}
		if a[i] < prev {
			t.Fatalf("arrival %d decreases: %v < %v", i, a[i], prev)
		}
		prev = a[i]
	}
	// Mean interarrival ≈ 1/λ (law of large numbers, loose 15% band).
	mean := a[n-1].Seconds() / float64(n)
	if math.Abs(mean-1/lambda) > 0.15/lambda {
		t.Fatalf("mean interarrival %.4fs, want ≈ %.4fs", mean, 1/lambda)
	}
}

// TestDriveRunsEveryQuery checks the open-loop driver: every query is
// submitted exactly once, metrics accumulate, and errors surface.
func TestDriveRunsEveryQuery(t *testing.T) {
	mix, err := NewMix(MixConfig{VisitRows: 2000, RankRows: 1000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	const queries = 2 * NumKinds
	var mu sync.Mutex
	seen := map[engine.QueryKind]int{}
	res, err := mix.Drive(context.Background(), DriveConfig{
		Clients: 4, Queries: queries, Lambda: 10_000, Seed: 1,
	}, func(_ context.Context, _ int, q *engine.Query) (int, bool, error) {
		mu.Lock()
		seen[q.Kind]++
		mu.Unlock()
		return 10, q.Kind == engine.KindSkyline, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LatencyMS) != queries {
		t.Fatalf("%d latencies, want %d", len(res.LatencyMS), queries)
	}
	if res.Entries != 10*queries {
		t.Fatalf("entries = %d, want %d", res.Entries, 10*queries)
	}
	if res.Fallbacks != 2 {
		t.Fatalf("fallbacks = %d, want 2 (one skyline per cycle)", res.Fallbacks)
	}
	if res.EntriesPerSec() <= 0 {
		t.Fatal("non-positive throughput")
	}
	for kind, n := range seen {
		if n != 2 {
			t.Fatalf("kind %v submitted %d times, want 2", kind, n)
		}
	}

	// A submit error aborts with context.
	if _, err := mix.Drive(context.Background(), DriveConfig{Clients: 2, Queries: 4, Lambda: 10_000},
		func(context.Context, int, *engine.Query) (int, bool, error) {
			return 0, false, errors.New("boom")
		}); err == nil {
		t.Fatal("submit error not propagated")
	}

	// Config validation.
	if _, err := mix.Drive(context.Background(), DriveConfig{Clients: 1}, nil); err == nil {
		t.Fatal("nil submit accepted")
	}
	if _, err := mix.Drive(context.Background(), DriveConfig{Clients: 1, Queries: 0},
		func(context.Context, int, *engine.Query) (int, bool, error) { return 0, false, nil }); err == nil {
		t.Fatal("zero queries accepted")
	}
}

// TestDriveHonorsCancellation: cancelling the context stops the
// arrival process mid-schedule instead of sleeping it out.
func TestDriveHonorsCancellation(t *testing.T) {
	mix, err := NewMix(MixConfig{VisitRows: 2000, RankRows: 1000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// Lambda 1 → the full 32-query schedule would take ~30s of arrivals.
	_, err = mix.Drive(ctx, DriveConfig{Clients: 2, Queries: 32, Lambda: 1, Seed: 9},
		func(context.Context, int, *engine.Query) (int, bool, error) { return 1, false, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled Drive took %v — arrival schedule was not interrupted", elapsed)
	}
}
