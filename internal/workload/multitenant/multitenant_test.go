package multitenant

import (
	"math"
	"testing"
	"time"

	"cheetah/internal/engine"
)

func testMix(t *testing.T) *Mix {
	t.Helper()
	m, err := NewMix(MixConfig{VisitRows: 2000, RankRows: 1500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMixCoversAllKindsAndValidates(t *testing.T) {
	m := testMix(t)
	seen := make(map[engine.QueryKind]bool)
	for i := 0; i < NumKinds; i++ {
		q := m.Query(i)
		if err := q.Validate(); err != nil {
			t.Errorf("query %d (%s): %v", i, q.Kind, err)
		}
		if seen[q.Kind] {
			t.Errorf("query %d repeats kind %s within one cycle", i, q.Kind)
		}
		seen[q.Kind] = true
	}
	if len(seen) != NumKinds {
		t.Fatalf("one cycle covers %d kinds, want %d", len(seen), NumKinds)
	}
}

func TestMixDeterministicAndJittered(t *testing.T) {
	m := testMix(t)
	a, b := m.Query(2), m.Query(2)
	if a.Kind != engine.KindTopN || a.N != b.N {
		t.Fatalf("query 2 not deterministic: %v/%d vs %v/%d", a.Kind, a.N, b.Kind, b.N)
	}
	// The next cycle's TOP N instance must differ in its parameter.
	if c := m.Query(2 + NumKinds); c.N == a.N {
		t.Fatalf("no parameter jitter across cycles: N=%d twice", a.N)
	}
}

func TestPoissonArrivals(t *testing.T) {
	const n, lambda = 2000, 50.0
	a := PoissonArrivals(n, lambda, 99)
	b := PoissonArrivals(n, lambda, 99)
	var prev time.Duration
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d not deterministic", i)
		}
		if a[i] < prev {
			t.Fatalf("arrival %d decreases: %v < %v", i, a[i], prev)
		}
		prev = a[i]
	}
	// Mean interarrival ≈ 1/λ (law of large numbers, loose 15% band).
	mean := a[n-1].Seconds() / float64(n)
	if math.Abs(mean-1/lambda) > 0.15/lambda {
		t.Fatalf("mean interarrival %.4fs, want ≈ %.4fs", mean, 1/lambda)
	}
}
