// Package multitenant is the multi-tenant serving driver: the query mix
// and the open-loop arrival process behind `cheetah-bench serve` and the
// serving equivalence tests. One Mix holds the benchmark tables
// (UserVisits + Rankings) and deterministically derives, for any query
// index i, one of the eight offloadable query shapes with per-instance
// parameter jitter — many concurrent clients drawing from the same mix
// exercise every pruner family against the shared switch at once.
//
// It lives as a subpackage of workload because, unlike the raw table
// generators, the driver builds engine.Query values (engine's own tests
// consume the generators, so the parent package must not import engine).
package multitenant

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"cheetah/internal/boolexpr"
	"cheetah/internal/engine"
	"cheetah/internal/hashutil"
	"cheetah/internal/prune"
	"cheetah/internal/table"
	"cheetah/internal/workload"
)

// MixConfig shapes a multi-tenant query mix.
type MixConfig struct {
	// VisitRows sizes the UserVisits table (most kinds run over it).
	VisitRows int
	// RankRows sizes the Rankings table (the join's right side).
	RankRows int
	// Seed drives table generation and per-query parameter jitter.
	Seed uint64
}

// Mix is a deterministic multi-tenant workload: shared tables plus a
// query generator cycling through the eight kinds.
type Mix struct {
	Visits   *table.Table
	Rankings *table.Table
	cfg      MixConfig
}

// NewMix generates the mix's tables.
func NewMix(cfg MixConfig) (*Mix, error) {
	if cfg.VisitRows <= 0 || cfg.RankRows <= 0 {
		return nil, fmt.Errorf("workload: mix needs positive table sizes, got %d/%d", cfg.VisitRows, cfg.RankRows)
	}
	visits, err := workload.UserVisits(workload.DefaultUserVisits(cfg.VisitRows, cfg.Seed))
	if err != nil {
		return nil, err
	}
	return &Mix{
		Visits:   visits,
		Rankings: workload.Rankings(cfg.RankRows, cfg.Seed^0x5eed),
		cfg:      cfg,
	}, nil
}

// NumKinds is the number of distinct query shapes the mix cycles over.
const NumKinds = 8

// Query returns the i-th query of the mix: kind i mod 8, with
// parameters jittered per index so repeated cycles are not identical
// queries. The same (cfg, i) always yields the same query.
func (m *Mix) Query(i int) *engine.Query {
	jit := hashutil.SplitMix64(m.cfg.Seed ^ uint64(i)*0x9e3779b97f4a7c15)
	switch i % NumKinds {
	case 0: // FILTER: duration window scan
		lo := int64(jit % 300)
		return &engine.Query{
			Kind:  engine.KindFilter,
			Table: m.Visits,
			Predicates: []engine.FilterPred{
				{Col: "duration", Op: prune.OpGT, Const: lo},
				{Col: "adRevenue", Op: prune.OpLT, Const: 9_000},
			},
			Formula:   boolexpr.And{boolexpr.Leaf{V: 0}, boolexpr.Leaf{V: 1}},
			CountOnly: true,
		}
	case 1: // DISTINCT user agents
		return &engine.Query{
			Kind:         engine.KindDistinct,
			Table:        m.Visits,
			DistinctCols: []string{"userAgent"},
		}
	case 2: // TOP N ad revenues
		return &engine.Query{
			Kind:     engine.KindTopN,
			Table:    m.Visits,
			OrderCol: "adRevenue",
			N:        50 + int(jit%200),
		}
	case 3: // GROUP BY MAX revenue per agent
		return &engine.Query{
			Kind:   engine.KindGroupByMax,
			Table:  m.Visits,
			KeyCol: "userAgent",
			AggCol: "adRevenue",
		}
	case 4: // GROUP BY SUM revenue per country
		return &engine.Query{
			Kind:   engine.KindGroupBySum,
			Table:  m.Visits,
			KeyCol: "countryCode",
			AggCol: "adRevenue",
		}
	case 5: // HAVING: languages with heavy total duration
		return &engine.Query{
			Kind:      engine.KindHaving,
			Table:     m.Visits,
			KeyCol:    "languageCode",
			AggCol:    "duration",
			Threshold: int64(m.cfg.VisitRows),
		}
	case 6: // JOIN visits ⋈ rankings on URL
		return &engine.Query{
			Kind:     engine.KindJoin,
			Table:    m.Visits,
			Right:    m.Rankings,
			LeftKey:  "destURL",
			RightKey: "pageURL",
		}
	default: // SKYLINE over (adRevenue, duration)
		return &engine.Query{
			Kind:        engine.KindSkyline,
			Table:       m.Visits,
			SkylineCols: []string{"adRevenue", "duration"},
		}
	}
}

// NumTenants is the tenant population of the mix: query i belongs to
// tenant i mod NumTenants, so every tenant draws every query kind over
// a full cycle (kind and tenant indices are coprime walks: 8 kinds × 5
// tenants repeat only every 40 queries).
const NumTenants = 5

// Tenant returns the name of the tenant owning the i-th query.
func (m *Mix) Tenant(i int) string {
	return fmt.Sprintf("tenant-%d", i%NumTenants)
}

// Priority returns the i-th query's admission priority: tenant 0 is
// the premium tenant (priority 1), the rest are best-effort (priority
// 0). Serving layers admit higher priorities first within a queue.
func (m *Mix) Priority(i int) int {
	if i%NumTenants == 0 {
		return 1
	}
	return 0
}

// DriveConfig shapes one open-loop serving run.
type DriveConfig struct {
	// Clients is the concurrent client count draining the arrival queue.
	Clients int
	// Queries is the workload length (mix indices 0..Queries-1).
	Queries int
	// Lambda is the Poisson arrival rate in queries per second.
	Lambda float64
	// Seed drives the arrival process.
	Seed uint64
}

// DriveResult is the measurement of one run.
type DriveResult struct {
	// Wall is the makespan from first arrival to last completion.
	Wall time.Duration
	// Entries counts worker→switch entries across all queries.
	Entries int
	// LatencyMS holds one per-query latency (milliseconds, admission
	// queueing included), in completion order.
	LatencyMS []float64
	// Fallbacks counts queries that ran direct (shed or unservable).
	Fallbacks int
}

// Submit executes one query of the mix and reports the entries it
// streamed and whether it fell back to direct execution. i is the
// query's mix index, so drivers can derive its QoS (Tenant(i),
// Priority(i)) without re-deriving the query. The serving benchmark
// passes a closure over plan.Serving.SubmitQoS; tests pass fakes. (A
// function type keeps this package independent of the planning layer.)
type Submit func(ctx context.Context, i int, q *engine.Query) (entries int, direct bool, err error)

// Drive runs the mix open-loop: arrivals follow a Poisson process that
// never waits for completions, cfg.Clients workers drain the arrival
// queue concurrently, and every query goes through submit. It is the
// shared driver of `cheetah-bench serve` (at every fabric width) and
// the serving race smokes.
func (m *Mix) Drive(ctx context.Context, cfg DriveConfig, submit Submit) (*DriveResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("workload: Drive needs a positive query count, got %d", cfg.Queries)
	}
	if submit == nil {
		return nil, fmt.Errorf("workload: Drive needs a submit function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	arrivals := PoissonArrivals(cfg.Queries, cfg.Lambda, cfg.Seed)
	jobs := make(chan int, cfg.Queries)
	start := time.Now()
	go func() {
		// Cancellation stops the arrival process mid-schedule; clients
		// drain whatever already arrived and Drive returns ctx.Err().
		defer close(jobs)
		for i := 0; i < cfg.Queries; i++ {
			if d := time.Until(start.Add(arrivals[i])); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return
				}
			}
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	res := &DriveResult{LatencyMS: make([]float64, 0, cfg.Queries)}
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	wg.Add(cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				q := m.Query(i)
				t0 := time.Now()
				entries, direct, err := submit(ctx, i, q)
				lat := float64(time.Since(t0)) / float64(time.Millisecond)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("workload: query %d (%s): %w", i, q.Kind, err)
					}
				} else {
					res.LatencyMS = append(res.LatencyMS, lat)
					res.Entries += entries
					if direct {
						res.Fallbacks++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Wall = time.Since(start)
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// EntriesPerSec is the run's aggregate pruning throughput.
func (r *DriveResult) EntriesPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Entries) / r.Wall.Seconds()
}

// PoissonArrivals returns n arrival offsets of an open-loop Poisson
// process with rate lambda (arrivals per second): exponential
// interarrival gaps, deterministic in seed, non-decreasing offsets.
// The open-loop property — arrivals do not wait for completions — is
// what distinguishes a serving benchmark from a closed-loop one.
func PoissonArrivals(n int, lambda float64, seed uint64) []time.Duration {
	if n <= 0 {
		return nil
	}
	if lambda <= 0 {
		lambda = 1
	}
	out := make([]time.Duration, n)
	var t float64 // seconds
	s := seed | 1
	for i := 0; i < n; i++ {
		s = hashutil.SplitMix64(s)
		// Uniform in (0,1]: avoid log(0).
		u := (float64(s>>11) + 1) / (1 << 53)
		t += -math.Log(u) / lambda
		out[i] = time.Duration(t * float64(time.Second))
	}
	return out
}
