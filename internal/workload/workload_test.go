package workload

import (
	"testing"
)

func TestRankingsShape(t *testing.T) {
	r := Rankings(1000, 1)
	if r.NumRows() != 1000 || r.NumCols() != 3 {
		t.Fatalf("dims %dx%d", r.NumRows(), r.NumCols())
	}
	// Nearly sorted: long-range inversions must be rare.
	ranks := r.Int64Col(1)
	inversions := 0
	for i := 100; i < len(ranks); i += 100 {
		if ranks[i] < ranks[i-100] {
			inversions++
		}
	}
	if inversions > 0 {
		t.Fatalf("rankings not nearly sorted: %d long-range inversions", inversions)
	}
	// Determinism.
	r2 := Rankings(1000, 1)
	for i := 0; i < 1000; i++ {
		if r.Int64At(1, i) != r2.Int64At(1, i) {
			t.Fatal("not deterministic")
		}
	}
}

func TestUserVisitsShape(t *testing.T) {
	cfg := DefaultUserVisits(5000, 3)
	uv, err := UserVisits(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uv.NumRows() != 5000 || uv.NumCols() != 9 {
		t.Fatalf("dims %dx%d", uv.NumRows(), uv.NumCols())
	}
	// Agent cardinality bounded by config; language codes within range.
	agents := map[string]bool{}
	langs := map[string]bool{}
	ac := uv.Schema().MustIndex("userAgent")
	lc := uv.Schema().MustIndex("languageCode")
	for r := 0; r < uv.NumRows(); r++ {
		agents[uv.StringAt(ac, r)] = true
		langs[uv.StringAt(lc, r)] = true
	}
	if len(langs) > cfg.Languages {
		t.Fatalf("%d languages > %d", len(langs), cfg.Languages)
	}
	// Zipf skew: duplication must be heavy.
	if len(agents) > uv.NumRows()/2 {
		t.Fatalf("agents barely repeat: %d distinct of %d", len(agents), uv.NumRows())
	}
	if _, err := UserVisits(UserVisitsConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestTPCHQ3Shape(t *testing.T) {
	orders, lineitem, err := TPCHQ3(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if orders.NumRows() != 500 || lineitem.NumRows() != 2000 {
		t.Fatalf("dims %d / %d", orders.NumRows(), lineitem.NumRows())
	}
	// Referential integrity: every lineitem orderkey exists in orders.
	keys := map[int64]bool{}
	for r := 0; r < orders.NumRows(); r++ {
		keys[orders.Int64At(0, r)] = true
	}
	for r := 0; r < lineitem.NumRows(); r++ {
		if !keys[lineitem.Int64At(0, r)] {
			t.Fatalf("dangling lineitem orderkey %d", lineitem.Int64At(0, r))
		}
	}
	if _, _, err := TPCHQ3(0, 1); err == nil {
		t.Fatal("0 orders accepted")
	}
}

func TestDistinctStream(t *testing.T) {
	s := DistinctStream(1000, 50, 1)
	if len(s) != 1000 {
		t.Fatal("length")
	}
	counts := map[uint64]int{}
	for _, v := range s {
		if v >= 50 {
			t.Fatalf("value %d out of range", v)
		}
		counts[v]++
	}
	if len(counts) != 50 {
		t.Fatalf("distinct = %d", len(counts))
	}
	for v, c := range counts {
		if c != 20 {
			t.Fatalf("value %d appears %d times, want 20", v, c)
		}
	}
	// Shuffled: the first 50 entries must not be 0..49 in order.
	ordered := true
	for i := 0; i < 50; i++ {
		if s[i] != uint64(i%50) {
			ordered = false
			break
		}
	}
	if ordered {
		t.Fatal("stream not shuffled")
	}
}

func TestUniformStreamIsPermutation(t *testing.T) {
	s := UniformStream(500, 3)
	seen := make([]bool, 501)
	for _, v := range s {
		if v < 1 || v > 500 || seen[v] {
			t.Fatalf("not a permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestPoints2DRanges(t *testing.T) {
	pts := Points2D(200, 256, 65536, 5)
	for _, p := range pts {
		if p[0] >= 256 || p[1] >= 65536 {
			t.Fatalf("point %v out of range", p)
		}
	}
}

func TestZipfKeysSkewed(t *testing.T) {
	keys := ZipfKeys(10_000, 1.3, 1000, 9)
	counts := map[uint64]int{}
	for _, k := range keys {
		counts[k]++
	}
	// Zipf: the most frequent key dominates.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 {
		t.Fatalf("top key count %d too small for Zipf(1.3)", max)
	}
	// Degenerate parameters fall back safely.
	if got := ZipfKeys(10, 0.5, 1, 1); len(got) != 10 {
		t.Fatal("fallback length")
	}
}

func TestJoinKeyStreams(t *testing.T) {
	a, b := JoinKeyStreams(100, 50, 70, 3)
	if len(a) != 150 || len(b) != 170 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	inA := map[uint64]bool{}
	for _, k := range a {
		inA[k] = true
	}
	shared := 0
	for _, k := range b {
		if inA[k] {
			shared++
		}
	}
	if shared != 100 {
		t.Fatalf("shared keys = %d, want 100", shared)
	}
}
