// Package aph implements the Approximate Product Heuristic of Appendix D:
// the SKYLINE projection h(x) = Π xᵢ, evaluated on the switch as a sum of
// fixed-point logarithms. A 2¹⁶-entry match-action lookup table maps each
// 16-bit value a to [β·log₂(a)], and for wider values the switch first
// finds the most-significant set bit with 64 TCAM prefix rules, then
// applies the table to the 16 bits below it and adds β·(ℓ-15).
//
// The heuristic only needs to be monotonically increasing in every
// dimension (§4.4); [β·log₂(·)] is non-decreasing, so the monotonicity
// required for SKYLINE safety is preserved.
package aph

import (
	"fmt"
	"math"
	"math/bits"
)

// DefaultBeta is the default fixed-point scale for the fractional part of
// the logarithm. With 16-bit table inputs the maximum table value is
// β·log₂(65535) < β·16, so β = 2²⁰ keeps per-dimension scores under 2²⁴
// and sums over ≤ 64 dimensions comfortably inside 32 bits, matching the
// paper's "can thus be efficiently encoded using just 32-bits".
const DefaultBeta = 1 << 20

// TableEntries is the size of the log lookup table (16-bit input domain).
const TableEntries = 1 << 16

// MSBTCAMRules is the number of TCAM prefix rules needed to locate the
// most-significant set bit of a 64-bit value in one lookup (Appendix D).
const MSBTCAMRules = 64

// Projector computes APH scores. It is immutable after construction and
// safe for concurrent use.
type Projector struct {
	beta  uint64
	table []uint64 // table[a] = round(beta*log2(a)) for a in [1, 65535]; table[0] = 0
}

// New builds an APH projector with the given β. β must be positive and at
// most 2³² so that table values fit the switch's 64-bit metadata slots
// with headroom for summation.
func New(beta uint64) (*Projector, error) {
	if beta == 0 || beta > 1<<32 {
		return nil, fmt.Errorf("aph: beta %d out of range [1, 2^32]", beta)
	}
	p := &Projector{beta: beta, table: make([]uint64, TableEntries)}
	for a := 1; a < TableEntries; a++ {
		p.table[a] = uint64(math.Round(float64(beta) * math.Log2(float64(a))))
	}
	// table[0] stays 0: a zero coordinate contributes nothing. This keeps
	// the projection total and monotone (0 ≤ any positive score).
	return p, nil
}

// MustNew is New with a panic on error, for static configurations.
func MustNew(beta uint64) *Projector {
	p, err := New(beta)
	if err != nil {
		panic(err)
	}
	return p
}

// Beta returns the fixed-point scale.
func (p *Projector) Beta() uint64 { return p.beta }

// ApproxLog2 returns [β·log₂(v)] using only the operations available in
// the datapath: an MSB TCAM lookup plus one table lookup plus one add.
func (p *Projector) ApproxLog2(v uint64) uint64 {
	if v < TableEntries {
		return p.table[v]
	}
	// ℓ is the index of the most significant set bit (the TCAM lookup).
	l := uint(bits.Len64(v)) - 1
	// Apply the table to bits ℓ..ℓ-15 — i.e. v' = v >> (ℓ-15) — and add
	// β·(ℓ-15) since v ≈ v'·2^(ℓ-15).
	shift := l - 15
	return p.table[v>>shift] + p.beta*uint64(shift)
}

// Score projects a multi-dimensional point to its APH scalar: the sum of
// per-dimension approximate logs, approximating β·log₂(Π xᵢ).
func (p *Projector) Score(point []uint64) uint64 {
	var s uint64
	for _, v := range point {
		s += p.ApproxLog2(v)
	}
	return s
}

// SumScore is the simpler sum heuristic hS(x) = Σ xᵢ the paper compares
// against (biased toward large-range dimensions).
func SumScore(point []uint64) uint64 {
	var s uint64
	for _, v := range point {
		s += v
	}
	return s
}

// ExactProductLog returns log₂(Π xᵢ) in floating point — the reference the
// heuristic approximates; zero coordinates contribute log 1 = 0 to match
// ApproxLog2's convention.
func ExactProductLog(point []uint64) float64 {
	s := 0.0
	for _, v := range point {
		if v > 1 {
			s += math.Log2(float64(v))
		}
	}
	return s
}

// MaxRelError returns an upper bound on the relative error of ApproxLog2
// versus β·log₂(v) for v ≥ 2, combining table rounding (±0.5) and the
// truncation of low bits for wide values (< log₂(1 + 2⁻¹⁵) per value).
func (p *Projector) MaxRelError() float64 {
	rounding := 0.5 / float64(p.beta)        // absolute, in log2 units
	truncation := math.Log2(1 + 1.0/(1<<15)) // absolute, in log2 units
	return rounding + truncation             // relative to 1 unit of log2
}
