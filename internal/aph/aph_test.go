package aph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("beta=0 accepted")
	}
	if _, err := New(1 << 33); err == nil {
		t.Fatal("beta=2^33 accepted")
	}
	if _, err := New(DefaultBeta); err != nil {
		t.Fatal(err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestApproxLog2TableRange(t *testing.T) {
	p := MustNew(DefaultBeta)
	// Exact powers of two inside the table must be exact multiples of beta.
	for e := uint(0); e < 16; e++ {
		v := uint64(1) << e
		want := uint64(e) * DefaultBeta
		if got := p.ApproxLog2(v); got != want {
			t.Fatalf("ApproxLog2(2^%d) = %d, want %d", e, got, want)
		}
	}
	if p.ApproxLog2(0) != 0 {
		t.Fatal("ApproxLog2(0) must be 0")
	}
	if p.ApproxLog2(1) != 0 {
		t.Fatal("ApproxLog2(1) must be 0")
	}
}

func TestApproxLog2WideValues(t *testing.T) {
	p := MustNew(DefaultBeta)
	// Powers of two above the table range still land on exact multiples.
	for e := uint(16); e < 64; e++ {
		v := uint64(1) << e
		want := uint64(e) * DefaultBeta
		if got := p.ApproxLog2(v); got != want {
			t.Fatalf("ApproxLog2(2^%d) = %d, want %d", e, got, want)
		}
	}
}

func TestApproxLog2Accuracy(t *testing.T) {
	p := MustNew(DefaultBeta)
	maxAbsErr := p.MaxRelError() // in log2 units
	vals := []uint64{2, 3, 100, 65535, 65536, 1 << 20, 123456789, 1 << 40, math.MaxUint64}
	for _, v := range vals {
		got := float64(p.ApproxLog2(v)) / DefaultBeta
		want := math.Log2(float64(v))
		if math.Abs(got-want) > maxAbsErr+1e-9 {
			t.Errorf("ApproxLog2(%d)/beta = %v, want %v ± %v", v, got, want, maxAbsErr)
		}
	}
}

func TestApproxLog2Monotone(t *testing.T) {
	// Monotonicity is the safety requirement for SKYLINE (§4.4): if x is
	// dominated by y then Score(x) <= Score(y), which needs per-dimension
	// monotonicity.
	p := MustNew(DefaultBeta)
	prev := uint64(0)
	for v := uint64(0); v < TableEntries+4096; v++ {
		cur := p.ApproxLog2(v)
		if cur < prev {
			t.Fatalf("ApproxLog2 not monotone at %d: %d < %d", v, cur, prev)
		}
		prev = cur
	}
}

func TestApproxLog2MonotoneProperty(t *testing.T) {
	p := MustNew(DefaultBeta)
	f := func(a, b uint64) bool {
		if a > b {
			a, b = b, a
		}
		return p.ApproxLog2(a) <= p.ApproxLog2(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScoreDominancePreserved(t *testing.T) {
	// If x is dominated by y (every coordinate <=), Score(x) <= Score(y).
	p := MustNew(DefaultBeta)
	f := func(xs [4]uint32, deltas [4]uint16) bool {
		x := make([]uint64, 4)
		y := make([]uint64, 4)
		for i := range x {
			x[i] = uint64(xs[i])
			y[i] = x[i] + uint64(deltas[i])
		}
		return p.Score(x) <= p.Score(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumScoreDominancePreserved(t *testing.T) {
	f := func(xs [3]uint32, deltas [3]uint16) bool {
		x := make([]uint64, 3)
		y := make([]uint64, 3)
		for i := range x {
			x[i] = uint64(xs[i])
			y[i] = x[i] + uint64(deltas[i])
		}
		return SumScore(x) <= SumScore(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScoreApproximatesProductOrdering(t *testing.T) {
	// The motivation for APH over Sum (§4.4): with unbalanced dimension
	// ranges (one 0..255, one 0..65535), product ordering should be
	// recovered by APH but distorted by Sum. Construct a pair where
	// product says A > B but sum says B > A, and verify APH agrees with
	// the product.
	p := MustNew(DefaultBeta)
	a := []uint64{200, 200} // product 40000, sum 400
	b := []uint64{2, 30000} // product 60000, sum 30002
	if ExactProductLog(a) >= ExactProductLog(b) {
		t.Fatal("test fixture wrong: want product(a) < product(b)")
	}
	if SumScore(a) >= SumScore(b) {
		t.Fatal("test fixture wrong: want sum(a) < sum(b)")
	}
	// Both agree here; now a case where sum disagrees with product:
	c := []uint64{150, 150} // product 22500, sum 300
	d := []uint64{1, 10000} // product 10000, sum 10001
	if !(ExactProductLog(c) > ExactProductLog(d)) || !(SumScore(c) < SumScore(d)) {
		t.Fatal("test fixture wrong for c,d")
	}
	if !(p.Score(c) > p.Score(d)) {
		t.Fatalf("APH failed to recover product ordering: Score(c)=%d Score(d)=%d", p.Score(c), p.Score(d))
	}
}

func TestScoreSumAdditivity(t *testing.T) {
	p := MustNew(DefaultBeta)
	x := []uint64{7, 130, 99999}
	want := p.ApproxLog2(7) + p.ApproxLog2(130) + p.ApproxLog2(99999)
	if got := p.Score(x); got != want {
		t.Fatalf("Score = %d, want %d", got, want)
	}
	if p.Score(nil) != 0 {
		t.Fatal("empty score must be 0")
	}
}

func TestExactProductLog(t *testing.T) {
	if got := ExactProductLog([]uint64{4, 8}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("log2(32) = %v", got)
	}
	if got := ExactProductLog([]uint64{0, 16}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("zero coordinate handling = %v", got)
	}
}

func TestBetaAccessorsAndConstants(t *testing.T) {
	p := MustNew(1 << 8)
	if p.Beta() != 1<<8 {
		t.Fatal("Beta accessor")
	}
	if TableEntries != 65536 || MSBTCAMRules != 64 {
		t.Fatal("constants changed")
	}
	if p.MaxRelError() <= 0 {
		t.Fatal("MaxRelError must be positive")
	}
}

func BenchmarkApproxLog2Narrow(b *testing.B) {
	p := MustNew(DefaultBeta)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += p.ApproxLog2(uint64(i) & 0xffff)
	}
	_ = sink
}

func BenchmarkApproxLog2Wide(b *testing.B) {
	p := MustNew(DefaultBeta)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += p.ApproxLog2(uint64(i)<<24 | 0xfffff)
	}
	_ = sink
}

func BenchmarkScore2D(b *testing.B) {
	p := MustNew(DefaultBeta)
	pt := []uint64{123456, 789}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += p.Score(pt)
	}
	_ = sink
}
