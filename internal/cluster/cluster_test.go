package cluster

import (
	"strings"
	"testing"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
	"cheetah/internal/workload"
)

func distinctQuery(t *testing.T, rows int, seed uint64) *engine.Query {
	t.Helper()
	uv, err := workload.UserVisits(workload.DefaultUserVisits(rows, seed))
	if err != nil {
		t.Fatal(err)
	}
	return &engine.Query{Kind: engine.KindDistinct, Table: uv, DistinctCols: []string{"userAgent"}}
}

func TestClusterDistinctLossless(t *testing.T) {
	q := distinctQuery(t, 3000, 1)
	want, err := engine.ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := Run(q, nil, Config{Workers: 5, Seed: 42, RTO: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res) {
		t.Fatalf("cluster result diverges: want %d rows got %d", len(want.Rows), len(res.Rows))
	}
	if rep.Pruned == 0 {
		t.Fatal("switch pruned nothing on a Zipfian distinct stream")
	}
	if rep.EntriesSent != 3000 {
		t.Fatalf("EntriesSent = %d", rep.EntriesSent)
	}
	if rep.Pruned+rep.Delivered < uint64(rep.EntriesSent) {
		t.Fatalf("conservation violated: pruned %d + delivered %d < sent %d",
			rep.Pruned, rep.Delivered, rep.EntriesSent)
	}
}

func TestClusterDistinctUnderLoss(t *testing.T) {
	q := distinctQuery(t, 1500, 3)
	want, err := engine.ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := Run(q, nil, Config{
		Workers: 3, Seed: 7, LossRate: 0.1, RTO: 8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res) {
		t.Fatal("lossy cluster run diverges from ground truth")
	}
	if rep.Retransmissions == 0 {
		t.Fatal("10% loss with no retransmissions")
	}
}

func TestClusterTopN(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(4000, 5))
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{Kind: engine.KindTopN, Table: uv, OrderCol: "adRevenue", N: 100}
	want, _ := engine.ExecDirect(q)
	res, rep, err := Run(q, nil, Config{Workers: 4, Seed: 9, RTO: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res) {
		t.Fatal("top-n cluster run diverges")
	}
	if rep.PrunerName != "topn-rand" {
		t.Fatalf("pruner = %s", rep.PrunerName)
	}
}

func TestClusterSkylineWithDrain(t *testing.T) {
	rank := workload.Rankings(3000, 11)
	if err := rank.Shuffle(1); err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{Kind: engine.KindSkyline, Table: rank, SkylineCols: []string{"pageRank", "avgDuration"}}
	want, _ := engine.ExecDirect(q)
	res, _, err := Run(q, nil, Config{Workers: 2, Seed: 13, RTO: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res) {
		t.Fatal("skyline cluster run diverges (drain path broken?)")
	}
}

func TestClusterGroupByMax(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(3000, 17))
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{Kind: engine.KindGroupByMax, Table: uv, KeyCol: "languageCode", AggCol: "adRevenue"}
	want, _ := engine.ExecDirect(q)
	res, _, err := Run(q, nil, Config{Workers: 5, Seed: 3, RTO: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res) {
		t.Fatal("group-by cluster run diverges")
	}
}

func TestClusterCustomPruner(t *testing.T) {
	q := distinctQuery(t, 1000, 19)
	// An undersized FIFO matrix: still correct, just prunes less.
	p, err := prune.NewDistinct(prune.DistinctConfig{Rows: 8, Cols: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := engine.ExecDirect(q)
	res, rep, err := Run(q, p, Config{Workers: 2, Seed: 21, RTO: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res) {
		t.Fatal("custom pruner run diverges")
	}
	if rep.PrunerName != "distinct-FIFO" {
		t.Fatalf("pruner = %s", rep.PrunerName)
	}
}

func TestClusterRejectsMultiPassKinds(t *testing.T) {
	orders, lineitem, err := workload.TPCHQ3(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{Kind: engine.KindJoin, Table: orders, Right: lineitem,
		LeftKey: "o_orderkey", RightKey: "l_orderkey"}
	if _, _, err := Run(q, nil, Config{Workers: 1}); err == nil {
		t.Fatal("multi-pass kind accepted by single-pass cluster runner")
	}
}

func TestClusterRejectsOversizedProgram(t *testing.T) {
	q := distinctQuery(t, 100, 23)
	// A matrix too large for the per-stage SRAM of the model.
	p, err := prune.NewDistinct(prune.DistinctConfig{Rows: 1 << 22, Cols: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(q, p, Config{Workers: 1}); err == nil {
		t.Fatal("oversized program admitted")
	}
}

// TestRunUninstallsOnEarlyError pins the shared-pipeline contract: a run
// that fails after its program was installed (here: a multi-pass kind
// the single-pass encoder rejects) must uninstall on the way out, so a
// failed query cannot poison a shared pipeline for the ones after it.
func TestRunUninstallsOnEarlyError(t *testing.T) {
	pl, err := switchsim.NewPipeline(switchsim.Tofino())
	if err != nil {
		t.Fatal(err)
	}
	uv, err := workload.UserVisits(workload.DefaultUserVisits(500, 3))
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{Kind: engine.KindHaving, Table: uv,
		KeyCol: "languageCode", AggCol: "duration", Threshold: 10}
	h, err := prune.NewHaving(prune.DefaultHavingConfig(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(q, h, Config{Workers: 2, Pipeline: pl, FlowID: 7}); err == nil {
		t.Fatal("multi-pass kind accepted")
	}
	if u := pl.Utilization(); u.StagesUsed != 0 || u.ALUsUsed != 0 {
		t.Fatalf("failed run leaked its program: %v", u)
	}
}

// TestRunSharedPipelineCleanExit checks the success path over a shared
// pipeline: the query runs against its own flow, reports the occupancy
// it saw, and leaves the pipeline empty for the next tenant.
func TestRunSharedPipelineCleanExit(t *testing.T) {
	pl, err := switchsim.NewPipeline(switchsim.Tofino())
	if err != nil {
		t.Fatal(err)
	}
	q := distinctQuery(t, 1000, 11)
	want, err := engine.ExecDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := Run(q, nil, Config{Workers: 3, Seed: 5, Pipeline: pl, FlowID: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res) {
		t.Fatal("shared-pipeline run diverges from direct")
	}
	if rep.Util.StagesUsed == 0 {
		t.Fatalf("report missing per-query utilization: %v", rep.Util)
	}
	if u := pl.Utilization(); u.StagesUsed != 0 {
		t.Fatalf("successful run left its program installed: %v", u)
	}
}

// TestSharedPipelineFlowValidation pins the descriptive errors of the
// Config.Pipeline/FlowID pairing: a shared pipeline never derives a
// flow id, and an occupied id is rejected before install.
func TestSharedPipelineFlowValidation(t *testing.T) {
	q := distinctQuery(t, 200, 11)
	pl, err := switchsim.NewPipeline(switchsim.Tofino())
	if err != nil {
		t.Fatal(err)
	}

	// Shared pipeline without an explicit flow id.
	_, _, err = Run(q, nil, Config{Workers: 2, Pipeline: pl})
	if err == nil || !strings.Contains(err.Error(), "explicit FlowID") {
		t.Fatalf("shared pipeline without FlowID: got %v", err)
	}

	// Shared pipeline with an already-occupied flow id.
	resident, err := engine.DefaultPruner(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Install(7, resident); err != nil {
		t.Fatal(err)
	}
	_, _, err = Run(q, nil, Config{Workers: 2, Pipeline: pl, FlowID: 7})
	if err == nil || !strings.Contains(err.Error(), "already carries a program") {
		t.Fatalf("occupied flow id: got %v", err)
	}
	// The resident program must be untouched by the rejected run.
	if !pl.FlowInstalled(7) {
		t.Fatal("validation removed the resident program")
	}

	// An unused explicit id works and cleans up after itself.
	res, _, err := Run(q, nil, Config{Workers: 2, Pipeline: pl, FlowID: 8})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := engine.ExecDirect(q)
	if !want.Equal(res) {
		t.Fatal("shared-pipeline run diverges")
	}
	if pl.FlowInstalled(8) {
		t.Fatal("run leaked its program on the shared pipeline")
	}

	// Dedicated pipelines still accept an external id without re-deriving.
	if _, _, err := Run(q, nil, Config{Workers: 2, FlowID: 42}); err != nil {
		t.Fatalf("dedicated pipeline with explicit FlowID: %v", err)
	}
}

// TestRunShardedMatchesDirect runs every single-pass kind across 1, 2
// and 4 switches (own network + pipeline each) and checks the merged
// completion against ground truth, clean and lossy.
func TestRunShardedMatchesDirect(t *testing.T) {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(2400, 21))
	if err != nil {
		t.Fatal(err)
	}
	queries := map[string]*engine.Query{
		"distinct":    {Kind: engine.KindDistinct, Table: uv, DistinctCols: []string{"userAgent"}},
		"topn":        {Kind: engine.KindTopN, Table: uv, OrderCol: "adRevenue", N: 60},
		"groupby-max": {Kind: engine.KindGroupByMax, Table: uv, KeyCol: "countryCode", AggCol: "adRevenue"},
		"skyline":     {Kind: engine.KindSkyline, Table: uv, SkylineCols: []string{"adRevenue", "duration"}},
	}
	for name, q := range queries {
		want, err := engine.ExecDirect(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, switches := range []int{1, 2, 4} {
			res, reps, err := RunSharded(q, nil, Config{Workers: 2, Seed: 13, RTO: 10 * time.Millisecond}, switches)
			if err != nil {
				t.Fatalf("%s switches=%d: %v", name, switches, err)
			}
			if !want.Equal(res) {
				t.Fatalf("%s switches=%d: sharded cluster run diverges", name, switches)
			}
			if len(reps) != switches {
				t.Fatalf("%s: %d reports for %d switches", name, len(reps), switches)
			}
			sent := 0
			for _, r := range reps {
				sent += r.EntriesSent
			}
			if sent != q.Table.NumRows() {
				t.Fatalf("%s switches=%d: per-switch EntriesSent sums to %d, want %d",
					name, switches, sent, q.Table.NumRows())
			}
		}
	}

	// Lossy fabric: retransmissions per rack, result still exact.
	q := queries["distinct"]
	want, _ := engine.ExecDirect(q)
	res, reps, err := RunSharded(q, nil, Config{
		Workers: 2, Seed: 17, LossRate: 0.08, RTO: 8 * time.Millisecond,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res) {
		t.Fatal("lossy sharded run diverges from ground truth")
	}
	retrans := uint64(0)
	for _, r := range reps {
		retrans += r.Retransmissions
	}
	if retrans == 0 {
		t.Fatal("8% loss across 3 racks with no retransmissions")
	}

	// Config misuse is rejected descriptively.
	pl, _ := switchsim.NewPipeline(switchsim.Tofino())
	if _, _, err := RunSharded(q, nil, Config{Pipeline: pl, FlowID: 1}, 2); err == nil {
		t.Fatal("RunSharded with a shared pipeline: want error")
	}
	if _, _, err := RunSharded(q, make([]prune.Pruner, 3), Config{}, 2); err == nil {
		t.Fatal("RunSharded pruner count mismatch: want error")
	}
}
