// Package cluster wires the full Cheetah deployment of Figure 1 over the
// simulated network: CWorkers send their partitions through the
// reliability protocol, the switch node runs the admitted pruning
// program, and the CMaster collects survivors and completes the query —
// exactly the paper's rack-scale topology (five workers, one ToR switch,
// one master), with injectable packet loss.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/netsim"
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
	"cheetah/internal/transport"
)

// Config shapes a cluster run.
type Config struct {
	// Workers is the CWorker count (default 5, the paper's testbed).
	Workers int
	// LossRate injects loss on every link (0 for a clean fabric).
	LossRate float64
	// Seed drives fingerprints, pruner randomness and loss decisions.
	Seed uint64
	// RTO overrides the protocol retransmission timeout.
	RTO time.Duration
	// Model is the switch hardware model (zero value selects Tofino).
	Model switchsim.Model
}

// Report summarizes a run's protocol-level behaviour.
type Report struct {
	EntriesSent     int
	Pruned          uint64
	Delivered       uint64
	Retransmissions uint64
	DroppedGaps     uint64
	PrunerName      string
}

// flowMux routes every registered flow to one shared pruning program,
// the way one installed query serves all worker ports.
type flowMux struct {
	mu     sync.Mutex
	pruner prune.Pruner
}

// Process implements transport.Dataplane.
func (m *flowMux) Process(_ uint32, vals []uint64) switchsim.Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pruner.Process(vals)
}

// Run executes a single-pass query end-to-end over the simulated
// network and returns the master's result. The pruner defaults to the
// query kind's standard configuration; pass one explicitly to ablate.
func Run(q *engine.Query, pruner prune.Pruner, cfg Config) (*engine.Result, *Report, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 5
	}
	if cfg.Model.Stages == 0 {
		cfg.Model = switchsim.Tofino()
	}
	if pruner == nil {
		p, err := engine.DefaultPruner(q, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		pruner = p
	}
	// Admission-check the program against the hardware model before
	// going anywhere near the network — the control-plane step of §3.
	if err := cfg.Model.Admits(pruner.Profile()); err != nil {
		return nil, nil, fmt.Errorf("cluster: query does not fit the switch: %w", err)
	}

	entries, err := engine.EncodeEntries(q, cfg.Workers, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}

	net := netsim.New(cfg.Seed)
	swEp := net.Endpoint("switch", 1<<16)
	maEp := net.Endpoint("master", 1<<16)
	mux := &flowMux{pruner: pruner}
	sw, err := transport.NewSwitch(swEp, "master", mux)
	if err != nil {
		return nil, nil, err
	}
	master, err := transport.NewMaster(maEp, "switch")
	if err != nil {
		return nil, nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sw.Run(ctx)
	go master.Run(ctx)

	workers := make([]*transport.Worker, cfg.Workers)
	total := 0
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("worker%d", i+1)
		ep := net.Endpoint(name, 1<<16)
		if cfg.LossRate > 0 {
			for _, pair := range [][2]string{{name, "switch"}, {"switch", name}} {
				if err := net.SetLoss(pair[0], pair[1], cfg.LossRate); err != nil {
					return nil, nil, err
				}
			}
		}
		w, err := transport.NewWorker(ep, transport.WorkerConfig{
			FlowID:     uint32(i + 1),
			SwitchAddr: "switch",
			RTO:        cfg.RTO,
		})
		if err != nil {
			return nil, nil, err
		}
		sw.Register(uint32(i+1), name)
		workers[i] = w
		total += len(entries[i])
	}
	if cfg.LossRate > 0 {
		if err := net.SetLossBoth("switch", "master", cfg.LossRate); err != nil {
			return nil, nil, err
		}
	}

	// Launch the workers.
	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *transport.Worker) {
			defer wg.Done()
			errs[i] = w.Run(ctx, entries[i])
		}(i, w)
	}

	// Master: collect survivor row ids until every flow FINs.
	rowsCh := make(chan []int, 1)
	go func() {
		var survivors []int
		finished := 0
		for finished < cfg.Workers {
			select {
			case d := <-master.Deliveries:
				if len(d.Values) > 0 {
					survivors = append(survivors, int(d.Values[len(d.Values)-1]))
				}
			case <-master.FlowDone:
				finished++
			case <-ctx.Done():
				rowsCh <- survivors
				return
			}
		}
		// Drain anything already queued.
		for {
			select {
			case d := <-master.Deliveries:
				if len(d.Values) > 0 {
					survivors = append(survivors, int(d.Values[len(d.Values)-1]))
				}
			default:
				rowsCh <- survivors
				return
			}
		}
	}()

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: worker %d: %w", i+1, err)
		}
	}
	survivors := <-rowsCh

	// Control-plane drain for pruners holding switch state (SKYLINE).
	if dr, ok := pruner.(prune.Drainer); ok {
		width := len(entries[0][0]) - 1
		for _, e := range dr.Drain() {
			if len(e) > width {
				survivors = append(survivors, int(e[width]))
			}
		}
	}

	res, err := engine.CompleteOnRows(q, dedupeInts(survivors))
	if err != nil {
		return nil, nil, err
	}
	report := &Report{
		EntriesSent: total,
		Pruned:      sw.Pruned,
		Delivered:   sw.ForwardedOK + sw.ForwardedRetransmit,
		DroppedGaps: sw.DroppedGap,
		PrunerName:  pruner.Name(),
	}
	for _, w := range workers {
		report.Retransmissions += w.Retransmissions
	}
	return res, report, nil
}

// dedupeInts removes duplicate row ids (retransmissions of pruned packets
// may be delivered, §7.2) while preserving order.
func dedupeInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
