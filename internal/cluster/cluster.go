// Package cluster wires the full Cheetah deployment of Figure 1 over the
// simulated network: CWorkers send their partitions through the
// reliability protocol, the switch node runs the admitted pruning
// program, and the CMaster collects survivors and completes the query —
// exactly the paper's rack-scale topology (five workers, one ToR switch,
// one master), with injectable packet loss.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cheetah/internal/engine"
	"cheetah/internal/netsim"
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
	"cheetah/internal/transport"
)

// Config shapes a cluster run.
type Config struct {
	// Workers is the CWorker count (default 5, the paper's testbed).
	Workers int
	// LossRate injects loss on every link (0 for a clean fabric).
	LossRate float64
	// Seed drives fingerprints, pruner randomness and loss decisions.
	Seed uint64
	// RTO overrides the protocol retransmission timeout.
	RTO time.Duration
	// Model is the switch hardware model (zero value selects Tofino).
	// Ignored when Pipeline is set.
	Model switchsim.Model
	// Pipeline, when non-nil, is a shared switch pipeline the run
	// installs its program into (and uninstalls from on every exit path)
	// instead of building a dedicated one — the serving layer's reuse
	// path. Other queries' programs stay untouched.
	Pipeline *switchsim.Pipeline
	// FlowID is the query id the program installs under (default 1).
	// With a shared Pipeline it must be unused.
	FlowID uint32
}

// Report summarizes a run's protocol-level behaviour.
type Report struct {
	EntriesSent     int
	Pruned          uint64
	Delivered       uint64
	Retransmissions uint64
	DroppedGaps     uint64
	PrunerName      string
	// Util is the pipeline occupancy right after the query's program was
	// installed (per-query utilization accounting).
	Util switchsim.Utilization
}

// queryFlow routes every worker's transport flow to one query's program
// in the pipeline, the way the Cheetah header's query id selects the
// query's register partition regardless of ingress port (§5).
type queryFlow struct {
	pipe   *switchsim.Pipeline
	flowID uint32
}

// Process implements transport.Dataplane.
func (f queryFlow) Process(_ uint32, vals []uint64) switchsim.Decision {
	return f.pipe.Process(f.flowID, vals)
}

// Run executes a single-pass query end-to-end over the simulated
// network and returns the master's result. The pruner defaults to the
// query kind's standard configuration; pass one explicitly to ablate.
func Run(q *engine.Query, pruner prune.Pruner, cfg Config) (*engine.Result, *Report, error) {
	survivors, report, err := runSurvivors(q, pruner, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := engine.CompleteOnRows(q, dedupeInts(survivors))
	if err != nil {
		return nil, nil, err
	}
	return res, report, nil
}

// resolveFlow validates the Config.Pipeline/FlowID pairing and returns
// the pipeline and flow id a run installs under. A dedicated pipeline
// defaults to flow 1; a shared pipeline never derives a flow id — the
// caller owns the id space there, so a missing or already-occupied id
// is a descriptive error instead of a silent collision (or a confusing
// "does not fit" from the duplicate install).
func resolveFlow(cfg *Config) (*switchsim.Pipeline, uint32, error) {
	if cfg.Pipeline == nil {
		flowID := cfg.FlowID
		if flowID == 0 {
			flowID = 1
		}
		pl, err := switchsim.NewPipeline(cfg.Model)
		if err != nil {
			return nil, 0, err
		}
		return pl, flowID, nil
	}
	if cfg.FlowID == 0 {
		return nil, 0, fmt.Errorf("cluster: a shared Pipeline requires an explicit FlowID " +
			"(the dedicated-pipeline default of 1 would collide with other queries' flows)")
	}
	if cfg.Pipeline.FlowInstalled(cfg.FlowID) {
		return nil, 0, fmt.Errorf("cluster: flow %d already carries a program on the shared pipeline; "+
			"choose an unused flow id per concurrent query", cfg.FlowID)
	}
	return cfg.Pipeline, cfg.FlowID, nil
}

// runSurvivors executes the worker → switch → master protocol and
// returns the surviving row ids (of q.Table's row space) before master
// completion — the shared core of Run and RunSharded.
func runSurvivors(q *engine.Query, pruner prune.Pruner, cfg Config) ([]int, *Report, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 5
	}
	if cfg.Model.Stages == 0 {
		cfg.Model = switchsim.Tofino()
	}
	if pruner == nil {
		p, err := engine.DefaultPruner(q, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		pruner = p
	}
	// Install into the pipeline before going anywhere near the network —
	// the control-plane admission step of §3. The deferred uninstall
	// covers every exit path, so an early error (encode failure, a
	// mis-wired transport) cannot leave the program behind and poison a
	// shared pipeline for the queries after it.
	pipe, flowID, err := resolveFlow(&cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := pipe.Install(flowID, pruner); err != nil {
		return nil, nil, fmt.Errorf("cluster: query does not fit the switch: %w", err)
	}
	defer func() {
		if err := pipe.Uninstall(flowID); err != nil {
			panic(fmt.Sprintf("cluster: uninstall flow %d: %v", flowID, err))
		}
	}()
	util := pipe.Utilization()

	entries, err := engine.EncodeEntries(q, cfg.Workers, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}

	net := netsim.New(cfg.Seed)
	swEp := net.Endpoint("switch", 1<<16)
	maEp := net.Endpoint("master", 1<<16)
	sw, err := transport.NewSwitch(swEp, "master", queryFlow{pipe: pipe, flowID: flowID})
	if err != nil {
		return nil, nil, err
	}
	master, err := transport.NewMaster(maEp, "switch")
	if err != nil {
		return nil, nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sw.Run(ctx)
	go master.Run(ctx)

	workers := make([]*transport.Worker, cfg.Workers)
	total := 0
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("worker%d", i+1)
		ep := net.Endpoint(name, 1<<16)
		if cfg.LossRate > 0 {
			for _, pair := range [][2]string{{name, "switch"}, {"switch", name}} {
				if err := net.SetLoss(pair[0], pair[1], cfg.LossRate); err != nil {
					return nil, nil, err
				}
			}
		}
		w, err := transport.NewWorker(ep, transport.WorkerConfig{
			FlowID:     uint32(i + 1),
			SwitchAddr: "switch",
			RTO:        cfg.RTO,
		})
		if err != nil {
			return nil, nil, err
		}
		sw.Register(uint32(i+1), name)
		workers[i] = w
		total += len(entries[i])
	}
	if cfg.LossRate > 0 {
		if err := net.SetLossBoth("switch", "master", cfg.LossRate); err != nil {
			return nil, nil, err
		}
	}

	// Launch the workers.
	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *transport.Worker) {
			defer wg.Done()
			errs[i] = w.Run(ctx, entries[i])
		}(i, w)
	}

	// Master: collect survivor row ids until every flow FINs.
	rowsCh := make(chan []int, 1)
	go func() {
		var survivors []int
		finished := 0
		for finished < cfg.Workers {
			select {
			case d := <-master.Deliveries:
				if len(d.Values) > 0 {
					survivors = append(survivors, int(d.Values[len(d.Values)-1]))
				}
			case <-master.FlowDone:
				finished++
			case <-ctx.Done():
				rowsCh <- survivors
				return
			}
		}
		// Drain anything already queued.
		for {
			select {
			case d := <-master.Deliveries:
				if len(d.Values) > 0 {
					survivors = append(survivors, int(d.Values[len(d.Values)-1]))
				}
			default:
				rowsCh <- survivors
				return
			}
		}
	}()

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: worker %d: %w", i+1, err)
		}
	}
	survivors := <-rowsCh

	// Control-plane drain for pruners holding switch state (SKYLINE).
	// The entry width comes from the first non-empty worker stream; when
	// every stream is empty the program stored nothing to drain.
	if dr, ok := pruner.(prune.Drainer); ok {
		width := -1
		for _, part := range entries {
			if len(part) > 0 {
				width = len(part[0]) - 1
				break
			}
		}
		if width >= 0 {
			for _, e := range dr.Drain() {
				if len(e) > width {
					survivors = append(survivors, int(e[width]))
				}
			}
		}
	}

	report := &Report{
		EntriesSent: total,
		Pruned:      sw.Pruned,
		Delivered:   sw.ForwardedOK + sw.ForwardedRetransmit,
		DroppedGaps: sw.DroppedGap,
		PrunerName:  pruner.Name(),
		Util:        util,
	}
	for _, w := range workers {
		report.Retransmissions += w.Retransmissions
	}
	return survivors, report, nil
}

// RunSharded executes a single-pass query across a fabric of N racks:
// the table is split contiguously, each shard runs the full worker →
// ToR-switch → master protocol on its own simulated network and
// pipeline concurrently, and the master completes the query exactly on
// the union of the shards' survivors. pruners supplies one program per
// switch (nil selects each kind's default); per-shard reports come back
// indexed by switch.
func RunSharded(q *engine.Query, pruners []prune.Pruner, cfg Config, switches int) (*engine.Result, []*Report, error) {
	if switches <= 0 {
		switches = 1
	}
	if cfg.Pipeline != nil {
		return nil, nil, fmt.Errorf("cluster: RunSharded builds one pipeline per switch; Config.Pipeline must be nil")
	}
	if pruners != nil && len(pruners) != switches {
		return nil, nil, fmt.Errorf("cluster: got %d pruners for %d switches", len(pruners), switches)
	}
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	shards, err := q.Table.Partition(switches)
	if err != nil {
		return nil, nil, err
	}
	n := q.Table.NumRows()
	reports := make([]*Report, switches)
	perShard := make([][]int, switches)
	errs := make([]error, switches)
	var wg sync.WaitGroup
	wg.Add(switches)
	for s := 0; s < switches; s++ {
		go func(s int) {
			defer wg.Done()
			qs := *q
			qs.Table = shards[s]
			cfgs := cfg
			// Independent loss/retransmission randomness per rack; the
			// pruner seed stays the caller's.
			cfgs.Seed = cfg.Seed + uint64(s)*0x9e3779b97f4a7c15
			var pruner prune.Pruner
			if pruners != nil {
				pruner = pruners[s]
			}
			local, rep, err := runSurvivors(&qs, pruner, cfgs)
			if err != nil {
				errs[s] = fmt.Errorf("cluster: switch %d: %w", s, err)
				return
			}
			// Contiguous shard s covers global rows [s·n/k, (s+1)·n/k).
			off := s * n / switches
			global := make([]int, len(local))
			for i, r := range local {
				global[i] = off + r
			}
			perShard[s] = global
			reports[s] = rep
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	var survivors []int
	for _, rows := range perShard {
		survivors = append(survivors, rows...)
	}
	res, err := engine.CompleteOnRows(q, dedupeInts(survivors))
	if err != nil {
		return nil, nil, err
	}
	return res, reports, nil
}

// dedupeInts removes duplicate row ids (retransmissions of pruned packets
// may be delivered, §7.2) while preserving order.
func dedupeInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
