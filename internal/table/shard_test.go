package table

import (
	"fmt"
	"sort"
	"testing"

	"cheetah/internal/hashutil"
)

// testTable builds a small mixed-type table with deterministic contents.
func testTable(t *testing.T, rows int) *Table {
	t.Helper()
	tbl := MustNew(Schema{
		{Name: "id", Type: Int64},
		{Name: "name", Type: String},
		{Name: "score", Type: Int64},
	})
	s := uint64(42)
	for i := 0; i < rows; i++ {
		s = hashutil.SplitMix64(s)
		if err := tbl.AppendRow(int64(i), fmt.Sprintf("n%d", s%7), int64(s%1000)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// rowStrings renders every row of t canonically for multiset comparison.
func rowStrings(t *Table) []string {
	out := make([]string, 0, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		key := ""
		for c := 0; c < t.NumCols(); c++ {
			key += fmt.Sprintf("%v\x00", t.ValueAt(c, r))
		}
		out = append(out, key)
	}
	return out
}

// assertMultisetEqual checks that the shards' rows together are exactly
// the original table's rows (the reassembly property).
func assertMultisetEqual(t *testing.T, orig *Table, shards []*Table) {
	t.Helper()
	want := rowStrings(orig)
	var got []string
	total := 0
	for _, sh := range shards {
		got = append(got, rowStrings(sh)...)
		total += sh.NumRows()
	}
	if total != orig.NumRows() {
		t.Fatalf("shards hold %d rows, original has %d", total, orig.NumRows())
	}
	sort.Strings(want)
	sort.Strings(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row multiset differs at %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestShardByReassemblesMultiset(t *testing.T) {
	tbl := testTable(t, 500)
	for _, k := range []int{1, 2, 4, 7, 16} {
		for _, col := range []string{"id", "name"} {
			shards, err := tbl.ShardBy(col, k)
			if err != nil {
				t.Fatalf("ShardBy(%q, %d): %v", col, k, err)
			}
			if len(shards) != k {
				t.Fatalf("ShardBy(%q, %d) returned %d shards", col, k, len(shards))
			}
			assertMultisetEqual(t, tbl, shards)
		}
	}
}

func TestShardByRangeReassemblesMultiset(t *testing.T) {
	tbl := testTable(t, 500)
	for _, k := range []int{1, 2, 4, 7} {
		shards, err := tbl.ShardByRange("score", k)
		if err != nil {
			t.Fatalf("ShardByRange(%d): %v", k, err)
		}
		assertMultisetEqual(t, tbl, shards)
		// Range property: shard i's max ≤ shard j's min for i < j — with
		// ties allowed at the boundary value only when the boundary value
		// stays within one shard (equal values never split).
		var prevMax int64
		havePrev := false
		for _, sh := range shards {
			if sh.NumRows() == 0 {
				continue
			}
			vals := sh.Int64Col(sh.Schema().MustIndex("score"))
			mn, mx := vals[0], vals[0]
			for _, v := range vals {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			if havePrev && mn <= prevMax {
				t.Fatalf("range shards overlap: min %d ≤ previous max %d", mn, prevMax)
			}
			prevMax, havePrev = mx, true
		}
	}
}

func TestShardByCoLocatesEqualKeys(t *testing.T) {
	tbl := testTable(t, 300)
	shards, err := tbl.ShardBy("name", 4)
	if err != nil {
		t.Fatal(err)
	}
	home := map[string]int{}
	for i, sh := range shards {
		names := sh.StringCol(sh.Schema().MustIndex("name"))
		for _, n := range names {
			if prev, ok := home[n]; ok && prev != i {
				t.Fatalf("key %q appears in shards %d and %d", n, prev, i)
			}
			home[n] = i
		}
	}
}

func TestShardEdgeCases(t *testing.T) {
	tbl := testTable(t, 3)

	// k ≤ 0 errors for every split flavour.
	for _, k := range []int{0, -1} {
		if _, err := tbl.Partition(k); err == nil {
			t.Fatalf("Partition(%d): want error", k)
		}
		if _, err := tbl.ShardBy("id", k); err == nil {
			t.Fatalf("ShardBy(%d): want error", k)
		}
		if _, err := tbl.ShardByRange("id", k); err == nil {
			t.Fatalf("ShardByRange(%d): want error", k)
		}
	}

	// k > rows: every flavour yields k splits, some empty.
	for name, split := range map[string]func(int) ([]*Table, error){
		"Partition":    tbl.Partition,
		"ShardBy":      func(k int) ([]*Table, error) { return tbl.ShardBy("id", k) },
		"ShardByRange": func(k int) ([]*Table, error) { return tbl.ShardByRange("id", k) },
	} {
		parts, err := split(10)
		if err != nil {
			t.Fatalf("%s(10) on 3 rows: %v", name, err)
		}
		if len(parts) != 10 {
			t.Fatalf("%s(10) returned %d splits", name, len(parts))
		}
		assertMultisetEqual(t, tbl, parts)
	}

	// Empty table: k empty splits, no error.
	empty := MustNew(tbl.Schema())
	for name, split := range map[string]func(int) ([]*Table, error){
		"Partition":    empty.Partition,
		"ShardBy":      func(k int) ([]*Table, error) { return empty.ShardBy("id", k) },
		"ShardByRange": func(k int) ([]*Table, error) { return empty.ShardByRange("id", k) },
	} {
		parts, err := split(4)
		if err != nil {
			t.Fatalf("%s on empty table: %v", name, err)
		}
		if len(parts) != 4 {
			t.Fatalf("%s on empty table returned %d splits", name, len(parts))
		}
		for i, p := range parts {
			if p.NumRows() != 0 {
				t.Fatalf("%s empty-table split %d has %d rows", name, i, p.NumRows())
			}
		}
	}

	// Unknown / mistyped columns error descriptively.
	if _, err := tbl.ShardBy("nope", 2); err == nil {
		t.Fatal("ShardBy(unknown column): want error")
	}
	if _, err := tbl.ShardByRange("name", 2); err == nil {
		t.Fatal("ShardByRange(string column): want error")
	}
	if _, err := tbl.ShardByRange("nope", 2); err == nil {
		t.Fatal("ShardByRange(unknown column): want error")
	}
}

func TestShardByDeterministic(t *testing.T) {
	tbl := testTable(t, 200)
	a, err := tbl.ShardBy("name", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tbl.ShardBy("name", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		ra, rb := rowStrings(a[i]), rowStrings(b[i])
		if len(ra) != len(rb) {
			t.Fatalf("shard %d sizes differ: %d vs %d", i, len(ra), len(rb))
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("shard %d row %d differs between runs", i, j)
			}
		}
	}
}

// TestPartitionViewsShareStorage pins Partition's zero-copy contract
// alongside the copying shards.
func TestPartitionViewsShareStorage(t *testing.T) {
	tbl := testTable(t, 100)
	parts, err := tbl.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += p.NumRows()
	}
	if total != tbl.NumRows() {
		t.Fatalf("partition rows %d != %d", total, tbl.NumRows())
	}
	assertMultisetEqual(t, tbl, parts)
	if err := parts[0].AppendRow(int64(1), "x", int64(2)); err == nil {
		t.Fatal("append to a view: want error")
	}
}

// TestAppendRowsFrom pins the bulk gather against the row-at-a-time
// reference, including from views and with type-mismatch rejection.
func TestAppendRowsFrom(t *testing.T) {
	src := testTable(t, 50)
	view, err := src.View(10, 40)
	if err != nil {
		t.Fatal(err)
	}
	rows := []int{0, 5, 5, 29, 17}
	bulk := MustNew(src.Schema())
	if err := bulk.AppendRowsFrom(view, rows); err != nil {
		t.Fatal(err)
	}
	ref := MustNew(src.Schema())
	for _, r := range rows {
		if err := ref.AppendRowFrom(view, r); err != nil {
			t.Fatal(err)
		}
	}
	got, want := rowStrings(bulk), rowStrings(ref)
	if len(got) != len(want) {
		t.Fatalf("bulk appended %d rows, reference %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs: %q vs %q", i, got[i], want[i])
		}
	}
	if err := view.AppendRowsFrom(src, []int{0}); err == nil {
		t.Fatal("append to a view: want error")
	}
	other := MustNew(Schema{{Name: "x", Type: String}})
	if err := other.AppendRowsFrom(src, []int{0}); err == nil {
		t.Fatal("column count mismatch: want error")
	}
	mistyped := MustNew(Schema{
		{Name: "id", Type: String},
		{Name: "name", Type: String},
		{Name: "score", Type: Int64},
	})
	if err := mistyped.AppendRowsFrom(src, []int{0}); err == nil {
		t.Fatal("type mismatch: want error")
	}
}
