// Package table implements the columnar in-memory tables that Cheetah's
// workers and master operate on. It mirrors the storage model the paper
// assumes of Spark SQL: columnar memory-optimized storage, with tasks
// reading only the columns relevant to a query ("metadata" streams) and
// late materialization fetching full rows afterwards.
//
// Tables are append-only. Columns are typed (64-bit integers or strings,
// which covers every benchmark query in the paper). Partitioning produces
// zero-copy views that share column storage, the same way Spark partitions
// reference blocks of a parent dataset.
//
// Tables optionally carry a block skip index (skip.go): per-column
// min/max zone maps and Bloom filters over fixed-size row blocks, built
// by BuildSkipIndex and extended over appended rows by RefreshSkipIndex
// under the same copy-on-write discipline as SnapshotPrefix. The engine
// consults it to prove whole blocks irrelevant to a query — storage-side
// skipping that composes with the switch's in-flight pruning.
package table

import (
	"fmt"
	"sort"
	"sync/atomic"

	"cheetah/internal/hashutil"
)

// Type is the type of a column.
type Type uint8

const (
	// Int64 is a 64-bit signed integer column.
	Int64 Type = iota
	// String is a variable-width string column.
	String
)

// String returns a human-readable type name.
func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ColumnDef describes one column of a schema.
type ColumnDef struct {
	Name string
	Type Type
}

// Schema is an ordered list of column definitions.
type Schema []ColumnDef

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustIndex is Index but panics on an unknown column; used when the caller
// has already validated names against the schema.
func (s Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("table: unknown column %q", name))
	}
	return i
}

// Validate reports whether the schema has at least one column and no
// duplicate names.
func (s Schema) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("table: schema has no columns")
	}
	seen := make(map[string]bool, len(s))
	for _, c := range s {
		if c.Name == "" {
			return fmt.Errorf("table: empty column name")
		}
		if seen[c.Name] {
			return fmt.Errorf("table: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// column holds the backing storage for one column. Exactly one of the
// slices is used, according to typ.
type column struct {
	typ  Type
	ints []int64
	strs []string
}

// Table is a columnar table, or a contiguous row-range view of one.
// The zero value is not usable; construct with New.
type Table struct {
	schema Schema
	cols   []*column
	// off and n delimit the view into the backing columns. For a table
	// created by New, off is 0 and n tracks appends.
	off, n int
	parent *Table // non-nil for views; appends are disallowed on views
	// version counts mutations applied through this handle (appends,
	// sorts, shuffles). Views and snapshots start at 0 and stay there.
	version uint64
	// skip is the block skip metadata (zone maps + Blooms; skip.go), nil
	// until BuildSkipIndex. Immutable once published: refreshes swap in
	// a new index, views and snapshots capture the pointer at creation.
	// In-place reorders clear it — block summaries describe row ranges.
	// The pointer itself is atomic so a planner may consult the index
	// while an ingestor refreshes it; skip-index staleness is safe in
	// both directions (skip.go), unlike every other Table field, which
	// needs external synchronization against mutation.
	skip atomic.Pointer[SkipIndex]
}

// New creates an empty table with the given schema.
func New(schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{schema: append(Schema(nil), schema...)}
	t.cols = make([]*column, len(schema))
	for i, c := range schema {
		t.cols[i] = &column{typ: c.Type}
	}
	return t, nil
}

// MustNew is New but panics on error; for statically known-good schemas.
func MustNew(schema Schema) *Table {
	t, err := New(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the table's schema. The caller must not modify it.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the number of rows visible in this table or view.
func (t *Table) NumRows() int { return t.n }

// Version returns the table's mutation counter: it increments once per
// successful mutating call (row/batch appends, sorts, shuffles) on this
// handle. A streaming ingestor uses it to detect appends that bypassed
// it — the table it owns must only change through its own commits.
// Views and snapshots report 0. Like every Table method, Version
// requires external synchronization against concurrent mutation.
func (t *Table) Version() uint64 { return t.version }

// IsView reports whether the table is a row-range view or snapshot of
// another table (appends and in-place reorders are disallowed on those).
func (t *Table) IsView() bool { return t.parent != nil }

// SnapshotPrefix returns a read-only snapshot of the first n rows whose
// column slice headers are detached from the source: later appends to t
// — even ones that grow the backing arrays in place — are invisible to
// the snapshot, and reading it needs no further synchronization. The
// row data is shared, not copied: append's copy-on-grow semantics never
// rewrite committed rows, and the snapshot's headers are capacity-
// clamped so they cannot alias new appends. In-place reorders of the
// source (SortByInt64, Shuffle) are NOT isolated; a snapshotting owner
// must not reorder. This is the ingestor's consistent-prefix read path:
// writers never block readers.
func (t *Table) SnapshotPrefix(n int) (*Table, error) {
	if n < 0 || n > t.n {
		return nil, fmt.Errorf("table: snapshot prefix %d out of range (rows=%d)", n, t.n)
	}
	root := t
	if t.parent != nil {
		root = t.parent
	}
	cols := make([]*column, len(t.cols))
	for i, c := range t.cols {
		nc := &column{typ: c.typ}
		switch c.typ {
		case Int64:
			nc.ints = c.ints[: t.off+n : t.off+n]
		case String:
			nc.strs = c.strs[: t.off+n : t.off+n]
		}
		cols[i] = nc
	}
	snap := &Table{schema: t.schema, cols: cols, off: t.off, n: n, parent: root}
	snap.skip.Store(t.skip.Load())
	return snap, nil
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// AppendRow appends a row given as one value per column. Values must be
// int64 for Int64 columns and string for String columns. The append is
// atomic: a type error leaves the table untouched (a partial append
// would leave ragged columns that misalign every later row).
func (t *Table) AppendRow(vals ...any) error {
	if t.parent != nil {
		return fmt.Errorf("table: cannot append to a view")
	}
	if len(vals) != len(t.cols) {
		return fmt.Errorf("table: AppendRow got %d values, schema has %d columns", len(vals), len(t.cols))
	}
	for i, v := range vals {
		switch t.cols[i].typ {
		case Int64:
			if _, ok := v.(int64); !ok {
				if _, ok2 := v.(int); !ok2 {
					return fmt.Errorf("table: column %q expects int64, got %T", t.schema[i].Name, v)
				}
			}
		case String:
			if _, ok := v.(string); !ok {
				return fmt.Errorf("table: column %q expects string, got %T", t.schema[i].Name, v)
			}
		}
	}
	for i, v := range vals {
		c := t.cols[i]
		switch c.typ {
		case Int64:
			iv, ok := v.(int64)
			if !ok {
				iv = int64(v.(int))
			}
			c.ints = append(c.ints, iv)
		case String:
			c.strs = append(c.strs, v.(string))
		}
	}
	t.n++
	t.version++
	return nil
}

// AppendInt64Row appends a row to a table whose columns are all Int64.
// It is the allocation-free fast path used by the workload generators.
func (t *Table) AppendInt64Row(vals ...int64) error {
	if t.parent != nil {
		return fmt.Errorf("table: cannot append to a view")
	}
	if len(vals) != len(t.cols) {
		return fmt.Errorf("table: AppendInt64Row got %d values, schema has %d columns", len(vals), len(t.cols))
	}
	for i := range vals {
		if t.cols[i].typ != Int64 {
			return fmt.Errorf("table: column %q is not int64", t.schema[i].Name)
		}
	}
	for i, v := range vals {
		t.cols[i].ints = append(t.cols[i].ints, v)
	}
	t.n++
	t.version++
	return nil
}

// Grow pre-allocates capacity for n additional rows.
func (t *Table) Grow(n int) {
	for _, c := range t.cols {
		switch c.typ {
		case Int64:
			if cap(c.ints)-len(c.ints) < n {
				ns := make([]int64, len(c.ints), len(c.ints)+n)
				copy(ns, c.ints)
				c.ints = ns
			}
		case String:
			if cap(c.strs)-len(c.strs) < n {
				ns := make([]string, len(c.strs), len(c.strs)+n)
				copy(ns, c.strs)
				c.strs = ns
			}
		}
	}
}

// ColumnType returns the type of column c without materializing the
// schema slice; hot loops use it to pick a typed column accessor once
// instead of consulting Schema() per row.
func (t *Table) ColumnType(c int) Type { return t.cols[c].typ }

// Int64At returns the integer value at row r of column c.
func (t *Table) Int64At(c, r int) int64 { return t.cols[c].ints[t.off+r] }

// StringAt returns the string value at row r of column c.
func (t *Table) StringAt(c, r int) string { return t.cols[c].strs[t.off+r] }

// ValueAt returns the value at row r of column c as an any.
func (t *Table) ValueAt(c, r int) any {
	if t.cols[c].typ == Int64 {
		return t.Int64At(c, r)
	}
	return t.StringAt(c, r)
}

// Int64Col returns the backing int64 slice for column c restricted to this
// view. The caller must not modify it. It panics if the column is not Int64.
func (t *Table) Int64Col(c int) []int64 {
	col := t.cols[c]
	if col.typ != Int64 {
		panic(fmt.Sprintf("table: column %q is %v, not int64", t.schema[c].Name, col.typ))
	}
	return col.ints[t.off : t.off+t.n]
}

// StringCol returns the backing string slice for column c restricted to
// this view. The caller must not modify it.
func (t *Table) StringCol(c int) []string {
	col := t.cols[c]
	if col.typ != String {
		panic(fmt.Sprintf("table: column %q is %v, not string", t.schema[c].Name, col.typ))
	}
	return col.strs[t.off : t.off+t.n]
}

// View returns a zero-copy view of rows [lo, hi).
func (t *Table) View(lo, hi int) (*Table, error) {
	if lo < 0 || hi < lo || hi > t.n {
		return nil, fmt.Errorf("table: view [%d,%d) out of range (rows=%d)", lo, hi, t.n)
	}
	root := t
	if t.parent != nil {
		root = t.parent
	}
	v := &Table{
		schema: t.schema,
		cols:   t.cols,
		off:    t.off + lo,
		n:      hi - lo,
		parent: root,
	}
	v.skip.Store(t.skip.Load())
	return v, nil
}

// Partition splits the table into k contiguous zero-copy views of
// near-equal size, analogous to Spark data partitions assigned to workers.
func (t *Table) Partition(k int) ([]*Table, error) {
	if k <= 0 {
		return nil, fmt.Errorf("table: partition count %d must be positive", k)
	}
	parts := make([]*Table, 0, k)
	for i := 0; i < k; i++ {
		lo := i * t.n / k
		hi := (i + 1) * t.n / k
		v, err := t.View(lo, hi)
		if err != nil {
			return nil, err
		}
		parts = append(parts, v)
	}
	return parts, nil
}

// Project returns a new table (copying only slice headers for the view
// range, not data, when the table is not a view; otherwise copying data)
// containing the named columns in order.
func (t *Table) Project(names ...string) (*Table, error) {
	defs := make(Schema, 0, len(names))
	idx := make([]int, 0, len(names))
	for _, nm := range names {
		i := t.schema.Index(nm)
		if i < 0 {
			return nil, fmt.Errorf("table: unknown column %q", nm)
		}
		defs = append(defs, t.schema[i])
		idx = append(idx, i)
	}
	out := &Table{schema: defs, n: t.n}
	out.cols = make([]*column, len(idx))
	for j, i := range idx {
		src := t.cols[i]
		dst := &column{typ: src.typ}
		switch src.typ {
		case Int64:
			dst.ints = src.ints[t.off : t.off+t.n]
		case String:
			dst.strs = src.strs[t.off : t.off+t.n]
		}
		out.cols[j] = dst
	}
	return out, nil
}

// SortByInt64 sorts the table in place by the named Int64 column,
// ascending. Views cannot be sorted. The sort is used to create the
// "nearly sorted" benchmark tables (Rankings is roughly sorted on
// pageRank).
func (t *Table) SortByInt64(name string) error {
	if t.parent != nil {
		return fmt.Errorf("table: cannot sort a view")
	}
	ci := t.schema.Index(name)
	if ci < 0 {
		return fmt.Errorf("table: unknown column %q", name)
	}
	if t.cols[ci].typ != Int64 {
		return fmt.Errorf("table: sort column %q is not int64", name)
	}
	perm := make([]int, t.n)
	for i := range perm {
		perm[i] = i
	}
	key := t.cols[ci].ints
	sort.SliceStable(perm, func(a, b int) bool { return key[perm[a]] < key[perm[b]] })
	t.applyPermutation(perm)
	t.version++
	return nil
}

// Shuffle permutes the rows of the table in place using a deterministic
// Fisher–Yates shuffle driven by seed. The paper shuffles nearly sorted
// tables before filter/skyline queries ("we run the query on a random
// permutation of the table").
func (t *Table) Shuffle(seed uint64) error {
	if t.parent != nil {
		return fmt.Errorf("table: cannot shuffle a view")
	}
	perm := make([]int, t.n)
	for i := range perm {
		perm[i] = i
	}
	s := seed
	for i := t.n - 1; i > 0; i-- {
		s = hashutil.SplitMix64(s)
		j := int(hashutil.ReduceFull(s, uint64(i+1)))
		perm[i], perm[j] = perm[j], perm[i]
	}
	t.applyPermutation(perm)
	t.version++
	return nil
}

// applyPermutation reorders every column so row i becomes old row perm[i].
// Reordering invalidates the skip index: its block summaries describe
// positional row ranges that no longer hold.
func (t *Table) applyPermutation(perm []int) {
	t.skip.Store(nil)
	for _, c := range t.cols {
		switch c.typ {
		case Int64:
			ns := make([]int64, len(c.ints))
			for i, p := range perm {
				ns[i] = c.ints[p]
			}
			c.ints = ns
		case String:
			ns := make([]string, len(c.strs))
			for i, p := range perm {
				ns[i] = c.strs[p]
			}
			c.strs = ns
		}
	}
}

// Row is a lightweight cursor over one row of a table.
type Row struct {
	t *Table
	r int
}

// RowAt returns a cursor for row r.
func (t *Table) RowAt(r int) Row { return Row{t: t, r: r} }

// Int64 returns the integer value of the named column in this row.
func (r Row) Int64(name string) int64 {
	return r.t.Int64At(r.t.schema.MustIndex(name), r.r)
}

// String returns the string value of the named column in this row.
func (r Row) String(name string) string {
	return r.t.StringAt(r.t.schema.MustIndex(name), r.r)
}

// Values returns all column values of the row in schema order.
func (r Row) Values() []any {
	out := make([]any, r.t.NumCols())
	for c := range out {
		out[c] = r.t.ValueAt(c, r.r)
	}
	return out
}

// AppendRowsFrom appends the given rows of src to t in order. Schemas
// must match in types (names may differ). It is the bulk counterpart
// of AppendRowFrom: the schema is checked once and each column is
// copied in one sweep — the master-side gather path of sharded
// executions, where survivor counts reach millions of rows.
func (t *Table) AppendRowsFrom(src *Table, rows []int) error {
	if t.parent != nil {
		return fmt.Errorf("table: cannot append to a view")
	}
	if len(t.cols) != len(src.cols) {
		return fmt.Errorf("table: column count mismatch %d vs %d", len(t.cols), len(src.cols))
	}
	for i := range t.cols {
		if t.cols[i].typ != src.cols[i].typ {
			return fmt.Errorf("table: column %d type mismatch", i)
		}
	}
	for i := range t.cols {
		switch t.cols[i].typ {
		case Int64:
			from := src.cols[i].ints[src.off : src.off+src.n]
			dst := t.cols[i].ints
			for _, r := range rows {
				dst = append(dst, from[r])
			}
			t.cols[i].ints = dst
		case String:
			from := src.cols[i].strs[src.off : src.off+src.n]
			dst := t.cols[i].strs
			for _, r := range rows {
				dst = append(dst, from[r])
			}
			t.cols[i].strs = dst
		}
	}
	t.n += len(rows)
	t.version++
	return nil
}

// AppendRowFrom appends row r of src to t. Schemas must be identical in
// types (names may differ).
func (t *Table) AppendRowFrom(src *Table, r int) error {
	if t.parent != nil {
		return fmt.Errorf("table: cannot append to a view")
	}
	if len(t.cols) != len(src.cols) {
		return fmt.Errorf("table: column count mismatch %d vs %d", len(t.cols), len(src.cols))
	}
	for i := range t.cols {
		if t.cols[i].typ != src.cols[i].typ {
			return fmt.Errorf("table: column %d type mismatch", i)
		}
		switch t.cols[i].typ {
		case Int64:
			t.cols[i].ints = append(t.cols[i].ints, src.Int64At(i, r))
		case String:
			t.cols[i].strs = append(t.cols[i].strs, src.StringAt(i, r))
		}
	}
	t.n++
	t.version++
	return nil
}
