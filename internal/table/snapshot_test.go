package table

import (
	"fmt"
	"testing"
)

// newKV builds a small two-column (k string, v int64) table.
func newKV(t *testing.T, rows int) *Table {
	t.Helper()
	tb := MustNew(Schema{{Name: "k", Type: String}, {Name: "v", Type: Int64}})
	for i := 0; i < rows; i++ {
		if err := tb.AppendRow(fmt.Sprintf("k%d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestVersionCountsMutations(t *testing.T) {
	tb := newKV(t, 3)
	if got := tb.Version(); got != 3 {
		t.Fatalf("after 3 appends Version() = %d, want 3", got)
	}
	src := newKV(t, 2)
	if err := tb.AppendRowsFrom(src, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if got := tb.Version(); got != 4 {
		t.Fatalf("after batch append Version() = %d, want 4 (one bump per call)", got)
	}
	if err := tb.Shuffle(7); err != nil {
		t.Fatal(err)
	}
	if got := tb.Version(); got != 5 {
		t.Fatalf("after shuffle Version() = %d, want 5", got)
	}
	v, err := tb.View(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Version(); got != 0 {
		t.Fatalf("view Version() = %d, want 0", got)
	}
	if !v.IsView() || tb.IsView() {
		t.Fatalf("IsView: view=%v root=%v, want true/false", v.IsView(), tb.IsView())
	}
}

func TestSnapshotPrefixIsolatesAppends(t *testing.T) {
	tb := newKV(t, 4)
	// Leave spare capacity so the next appends land in place — the case
	// where a plain zero-copy view would see them.
	tb.Grow(64)
	snap, err := tb.SnapshotPrefix(4)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.IsView() {
		t.Fatal("snapshot should report IsView")
	}
	for i := 0; i < 32; i++ {
		if err := tb.AppendRow(fmt.Sprintf("late%d", i), int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := snap.NumRows(); got != 4 {
		t.Fatalf("snapshot rows = %d after source appends, want 4", got)
	}
	for i := 0; i < 4; i++ {
		if got, want := snap.StringAt(0, i), fmt.Sprintf("k%d", i); got != want {
			t.Fatalf("snapshot row %d key = %q, want %q", i, got, want)
		}
		if got := snap.Int64At(1, i); got != int64(i) {
			t.Fatalf("snapshot row %d val = %d, want %d", i, got, i)
		}
	}
	// Appending to a snapshot must fail like any view.
	if err := snap.AppendRow("x", int64(0)); err == nil {
		t.Fatal("AppendRow on a snapshot should fail")
	}
	// Sub-views of the snapshot stay detached too.
	dv, err := snap.View(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := dv.Int64At(1, 0); got != 1 {
		t.Fatalf("snapshot sub-view val = %d, want 1", got)
	}
	// Column accessors on the snapshot must be bounded by the prefix.
	if got := len(snap.Int64Col(1)); got != 4 {
		t.Fatalf("snapshot Int64Col len = %d, want 4", got)
	}
}

// TestAppendRowAtomicOnTypeError pins that a mid-row type error leaves
// the table untouched: a partial append would leave ragged columns
// silently misaligning every later row.
func TestAppendRowAtomicOnTypeError(t *testing.T) {
	tb := newKV(t, 2)
	if err := tb.AppendRow("key", "not-an-int"); err == nil {
		t.Fatal("mistyped AppendRow should fail")
	}
	if got := tb.Version(); got != 2 {
		t.Fatalf("version = %d after failed append, want 2", got)
	}
	if err := tb.AppendRow("k2", int64(2)); err != nil {
		t.Fatal(err)
	}
	// Columns stayed aligned: the new row reads back whole.
	if k, v := tb.StringAt(0, 2), tb.Int64At(1, 2); k != "k2" || v != 2 {
		t.Fatalf("row after failed append = (%q, %d), want (k2, 2)", k, v)
	}
	// Int64-only fast path: same atomicity.
	ints := MustNew(Schema{{Name: "a", Type: Int64}, {Name: "b", Type: String}})
	if err := ints.AppendInt64Row(1, 2); err == nil {
		t.Fatal("AppendInt64Row on a string column should fail")
	}
	if ints.NumRows() != 0 || len(ints.Int64Col(0)) != 0 {
		t.Fatal("failed AppendInt64Row mutated the table")
	}
}

func TestSnapshotPrefixRange(t *testing.T) {
	tb := newKV(t, 3)
	if _, err := tb.SnapshotPrefix(-1); err == nil {
		t.Fatal("negative prefix should fail")
	}
	if _, err := tb.SnapshotPrefix(4); err == nil {
		t.Fatal("prefix past the row count should fail")
	}
	empty, err := tb.SnapshotPrefix(0)
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumRows() != 0 {
		t.Fatalf("empty snapshot rows = %d", empty.NumRows())
	}
}

// TestAppendRowsFromAliasedDestination pins the copy-on-grow contract:
// bulk-appending rows of a view INTO the view's own backing table must
// neither corrupt the source rows nor mis-copy — whether the append
// grows the arrays (copy to a fresh array, old rows untouched) or lands
// in spare capacity (writes start past the view's clamped range).
func TestAppendRowsFromAliasedDestination(t *testing.T) {
	for _, spare := range []int{0, 128} { // force both grow and in-place
		t.Run(fmt.Sprintf("spare=%d", spare), func(t *testing.T) {
			tb := newKV(t, 8)
			if spare > 0 {
				tb.Grow(spare)
			}
			src, err := tb.View(2, 6) // rows 2..5 of the destination itself
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.AppendRowsFrom(src, []int{0, 1, 2, 3}); err != nil {
				t.Fatal(err)
			}
			if got := tb.NumRows(); got != 12 {
				t.Fatalf("rows = %d, want 12", got)
			}
			// The original 8 rows are intact…
			for i := 0; i < 8; i++ {
				if got, want := tb.StringAt(0, i), fmt.Sprintf("k%d", i); got != want {
					t.Fatalf("source row %d corrupted: key %q, want %q", i, got, want)
				}
				if got := tb.Int64At(1, i); got != int64(i) {
					t.Fatalf("source row %d corrupted: val %d, want %d", i, got, i)
				}
			}
			// …and the appended rows replicate view rows 2..5.
			for i := 0; i < 4; i++ {
				if got, want := tb.StringAt(0, 8+i), fmt.Sprintf("k%d", 2+i); got != want {
					t.Fatalf("appended row %d key = %q, want %q", i, got, want)
				}
				if got := tb.Int64At(1, 8+i); got != int64(2+i) {
					t.Fatalf("appended row %d val = %d, want %d", i, got, int64(2+i))
				}
			}
		})
	}
}
