package table

// Block skip metadata: zone maps + Bloom filters over fixed-size row
// blocks, the storage-side complement to switch pruning. The switch
// prunes entries in flight; the skip index lets workers avoid reading
// (and encoding) whole blocks that provably contain no relevant row,
// in the style of Provenance-based Data Skipping.
//
// The index is immutable once published: extending it after appends
// builds a NEW SkipIndex sharing the sealed (full) block metas and
// rebuilding only the tail, so a snapshot that captured an older index
// pointer keeps reading it without synchronization — the same
// copy-on-write discipline SnapshotPrefix applies to column headers.
//
// Staleness is safe in both directions, which is what makes the
// ingestor integration cheap. An index covering MORE rows than a view
// (snapshot taken mid-tail-block) yields per-block ranges and Blooms
// that are supersets of the view's rows — fewer skips, never a wrong
// one. An index covering FEWER rows (appends since the last refresh)
// leaves the uncovered tail without metadata — those rows are always
// scanned. Both rely on rows being append-only and never rewritten;
// in-place reorders (SortByInt64, Shuffle) invalidate the index.

import (
	"fmt"

	"cheetah/internal/hashutil"
	"cheetah/internal/sketch"
)

// DefaultBlockRows is the skip-index block size used when the caller
// does not pick one: large enough that per-block metadata (two int64s
// plus ~8 Bloom bits per row per column) stays well under 1% of column
// storage, small enough that a selective predicate skips at fine grain.
const DefaultBlockRows = 4096

// bloomSeed salts the per-column block Blooms. Fixed so rebuilding a
// tail block reproduces the same structure for the same rows.
const bloomSeed = 0x5eedb10c

// BlockMeta summarizes one block of rows: per-column min/max for Int64
// columns and a per-column Bloom filter (Int64 values keyed directly,
// strings hashed). All fields are immutable after construction.
type BlockMeta struct {
	rows   int
	mins   []int64
	maxs   []int64
	blooms []*sketch.Bloom
}

// Rows returns how many rows the block summarizes. For every block but
// the tail this equals the index's block size; the tail covers however
// many rows existed at the last build/refresh.
func (m *BlockMeta) Rows() int { return m.rows }

// Int64Range returns the min and max value of Int64 column c over the
// block's rows.
func (m *BlockMeta) Int64Range(c int) (lo, hi int64) { return m.mins[c], m.maxs[c] }

// MayContainInt64 reports whether Int64 column c may contain v in this
// block. False is definitive (zone map excludes it, or the Bloom has
// never seen it); true may be a false positive.
func (m *BlockMeta) MayContainInt64(c int, v int64) bool {
	if v < m.mins[c] || v > m.maxs[c] {
		return false
	}
	if b := m.blooms[c]; b != nil {
		return b.Contains(uint64(v))
	}
	return true
}

// MayContainString reports whether String column c may contain s in
// this block. False is definitive; true may be a false positive.
func (m *BlockMeta) MayContainString(c int, s string) bool {
	if b := m.blooms[c]; b != nil {
		return b.Contains(hashutil.HashString64(s, bloomSeed))
	}
	return true
}

// SkipIndex is block skip metadata over the first Rows() rows of a root
// table, in root row coordinates: block b covers root rows
// [b·BlockRows(), min((b+1)·BlockRows(), Rows())). The struct and every
// BlockMeta it references are immutable; refreshing after appends
// publishes a new index.
type SkipIndex struct {
	blockRows int
	rows      int
	blocks    []*BlockMeta
}

// BlockRows returns the index's block size in rows.
func (ix *SkipIndex) BlockRows() int { return ix.blockRows }

// Rows returns how many root rows the index covers. Rows appended after
// the last refresh are uncovered and must be scanned.
func (ix *SkipIndex) Rows() int { return ix.rows }

// NumBlocks returns the number of block metas.
func (ix *SkipIndex) NumBlocks() int { return len(ix.blocks) }

// Block returns the meta for block b.
func (ix *SkipIndex) Block(b int) *BlockMeta { return ix.blocks[b] }

// SkipIndex returns the table's skip index, or nil if none was built.
// Views and snapshots return the index captured from their root at
// creation time; use RootOffset to translate view rows to index rows.
// Safe to call concurrently with BuildSkipIndex/RefreshSkipIndex: the
// pointer swap is atomic and a stale index is safe in both directions
// (see the file comment).
func (t *Table) SkipIndex() *SkipIndex { return t.skip.Load() }

// RootOffset returns the view's starting row in root coordinates (0 for
// a root table). Skip-index blocks are root-aligned, so a consumer
// iterating a view maps local row r to index row RootOffset()+r.
func (t *Table) RootOffset() int { return t.off }

// BuildSkipIndex builds (or rebuilds) block skip metadata over all
// current rows and attaches it to the table; SnapshotPrefix, View and
// Partition propagate the index to the tables they derive. blockRows
// ≤ 0 selects DefaultBlockRows. Only root tables carry an index.
func (t *Table) BuildSkipIndex(blockRows int) error {
	if t.parent != nil {
		return fmt.Errorf("table: cannot build a skip index on a view")
	}
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	ix := &SkipIndex{blockRows: blockRows, rows: t.n}
	for lo := 0; lo < t.n; lo += blockRows {
		hi := min(lo+blockRows, t.n)
		ix.blocks = append(ix.blocks, t.buildBlock(lo, hi, blockRows))
	}
	t.skip.Store(ix)
	return nil
}

// RefreshSkipIndex extends the skip index over rows appended since the
// last build/refresh. Sealed (full) block metas are shared with the
// previous index; only the tail block is rebuilt, so the cost is
// O(blockRows + new rows) and previously captured snapshots keep their
// old index untouched. A no-op when the table has no index, is a view,
// or is already fully covered.
func (t *Table) RefreshSkipIndex() {
	ix := t.skip.Load()
	if t.parent != nil || ix == nil || ix.rows == t.n {
		return
	}
	nx := &SkipIndex{blockRows: ix.blockRows, rows: t.n}
	sealed := ix.rows / ix.blockRows
	nx.blocks = make([]*BlockMeta, 0, (t.n+ix.blockRows-1)/ix.blockRows)
	nx.blocks = append(nx.blocks, ix.blocks[:sealed]...)
	for lo := sealed * ix.blockRows; lo < t.n; lo += ix.blockRows {
		hi := min(lo+ix.blockRows, t.n)
		nx.blocks = append(nx.blocks, t.buildBlock(lo, hi, ix.blockRows))
	}
	t.skip.Store(nx)
}

// buildBlock summarizes root rows [lo, hi) of every column. Bloom size
// follows the block capacity (~8 bits per row, 3 hash functions) with a
// small floor so tiny test blocks keep a usable false-positive rate.
func (t *Table) buildBlock(lo, hi, blockRows int) *BlockMeta {
	m := &BlockMeta{
		rows:   hi - lo,
		mins:   make([]int64, len(t.cols)),
		maxs:   make([]int64, len(t.cols)),
		blooms: make([]*sketch.Bloom, len(t.cols)),
	}
	bits := max(8*blockRows, 64)
	for c, col := range t.cols {
		b, err := sketch.NewBloom(bits, 3, bloomSeed^uint64(c))
		if err != nil {
			// Size and hash count are statically valid; an error here
			// would be a programming bug, not a data condition.
			panic(fmt.Sprintf("table: block bloom: %v", err))
		}
		m.blooms[c] = b
		switch col.typ {
		case Int64:
			vals := col.ints[lo:hi]
			mn, mx := vals[0], vals[0]
			for _, v := range vals {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
				b.Add(uint64(v))
			}
			m.mins[c], m.maxs[c] = mn, mx
		case String:
			for _, s := range col.strs[lo:hi] {
				b.Add(hashutil.HashString64(s, bloomSeed))
			}
		}
	}
	return m
}
