package table

// Sharding splits a table by *content* rather than by position: each row
// is routed to one of k shards by its value in a shard column. This is
// the storage half of the multi-switch fabric — the paper's deployment
// has each rack's ToR switch pruning its own workers' streams, so a
// table sharded across racks determines which switch sees which rows.
// Contiguous Partition stays the single-switch (and per-shard CWorker)
// split; ShardBy adds hash placement (co-locating equal keys, the
// property JOIN scatter/gather needs) and ShardByRange adds
// order-preserving range placement.
//
// Unlike Partition's zero-copy views, shards are real tables: rows are
// scattered, so the column storage must be rebuilt per shard. Sharding
// is deterministic — the same table, column and k always produce the
// same shards.

import (
	"fmt"
	"sort"

	"cheetah/internal/hashutil"
)

// shardSeed fixes the hash-sharding placement function. It is a package
// constant, not a caller seed: two tables sharded on same-typed key
// columns must agree on placement (JOIN co-location) regardless of which
// query triggered the sharding.
const shardSeed = 0x5ca77e12c0ffee42

// ShardBy splits the table into k shards by hashing the named column:
// row r lands in shard hash(value) mod k. Equal values always land in
// the same shard, so two tables hash-sharded on same-typed key columns
// co-locate their matching keys shard-for-shard. k may exceed the row
// count (the excess shards are empty); k ≤ 0 is an error.
func (t *Table) ShardBy(col string, k int) ([]*Table, error) {
	ci := t.schema.Index(col)
	if ci < 0 {
		return nil, fmt.Errorf("table: unknown shard column %q", col)
	}
	assign, err := t.shardAssignments(ci, k)
	if err != nil {
		return nil, err
	}
	return t.buildShards(assign, k)
}

// shardAssignments computes each row's hash-shard index.
func (t *Table) shardAssignments(ci, k int) ([]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("table: shard count %d must be positive", k)
	}
	assign := make([]int, t.n)
	switch t.cols[ci].typ {
	case Int64:
		vals := t.Int64Col(ci)
		for r, v := range vals {
			assign[r] = int(hashutil.ReduceFull(hashutil.HashUint64(uint64(v), shardSeed), uint64(k)))
		}
	case String:
		vals := t.StringCol(ci)
		for r, v := range vals {
			assign[r] = int(hashutil.ReduceFull(hashutil.HashString64(v, shardSeed), uint64(k)))
		}
	}
	return assign, nil
}

// ShardByRange splits the table into k shards by value ranges of the
// named Int64 column: boundaries are the column's k-quantiles, so the
// shards cover contiguous, non-overlapping value ranges of near-equal
// row count (heavily duplicated values can still skew shard sizes —
// equal values never split across shards). k may exceed the row count;
// k ≤ 0 and non-Int64 columns are errors.
func (t *Table) ShardByRange(col string, k int) ([]*Table, error) {
	ci := t.schema.Index(col)
	if ci < 0 {
		return nil, fmt.Errorf("table: unknown shard column %q", col)
	}
	if k <= 0 {
		return nil, fmt.Errorf("table: shard count %d must be positive", k)
	}
	if t.cols[ci].typ != Int64 {
		return nil, fmt.Errorf("table: range-shard column %q is %v, need int64", col, t.cols[ci].typ)
	}
	vals := t.Int64Col(ci)
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Upper (inclusive) bound of shards 0..k-2; the last shard is
	// unbounded. Quantile boundaries on the sorted column give near-equal
	// shard sizes for distinct-heavy columns.
	bounds := make([]int64, k-1)
	for i := range bounds {
		hi := (i + 1) * t.n / k
		if hi >= t.n {
			hi = t.n - 1
		}
		if t.n == 0 {
			bounds[i] = 0
			continue
		}
		bounds[i] = sorted[hi]
	}
	assign := make([]int, t.n)
	for r, v := range vals {
		assign[r] = sort.Search(len(bounds), func(i int) bool { return v <= bounds[i] })
	}
	return t.buildShards(assign, k)
}

// buildShards materializes k shard tables from per-row assignments,
// copying column storage shard-by-shard (one pre-sized allocation per
// shard column).
func (t *Table) buildShards(assign []int, k int) ([]*Table, error) {
	counts := make([]int, k)
	for _, s := range assign {
		counts[s]++
	}
	shards := make([]*Table, k)
	for s := 0; s < k; s++ {
		sh, err := New(t.schema)
		if err != nil {
			return nil, err
		}
		sh.Grow(counts[s])
		shards[s] = sh
	}
	for c, src := range t.cols {
		switch src.typ {
		case Int64:
			vals := src.ints[t.off : t.off+t.n]
			for r, s := range assign {
				dst := shards[s].cols[c]
				dst.ints = append(dst.ints, vals[r])
			}
		case String:
			vals := src.strs[t.off : t.off+t.n]
			for r, s := range assign {
				dst := shards[s].cols[c]
				dst.strs = append(dst.strs, vals[r])
			}
		}
	}
	for s := range shards {
		shards[s].n = counts[s]
	}
	return shards, nil
}
