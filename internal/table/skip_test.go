package table

import (
	"fmt"
	"testing"
)

func skipTestTable(t *testing.T, rows int) *Table {
	t.Helper()
	tb := MustNew(Schema{
		{Name: "v", Type: Int64},
		{Name: "s", Type: String},
	})
	for i := 0; i < rows; i++ {
		if err := tb.AppendRow(int64(i*10), fmt.Sprintf("s%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestSkipIndexEmptyTable(t *testing.T) {
	tb := skipTestTable(t, 0)
	if err := tb.BuildSkipIndex(4); err != nil {
		t.Fatal(err)
	}
	ix := tb.SkipIndex()
	if ix == nil || ix.NumBlocks() != 0 || ix.Rows() != 0 {
		t.Fatalf("empty table index: %+v", ix)
	}
	// Growing from empty covers the appended rows.
	if err := tb.AppendRow(int64(7), "x"); err != nil {
		t.Fatal(err)
	}
	tb.RefreshSkipIndex()
	ix = tb.SkipIndex()
	if ix.NumBlocks() != 1 || ix.Rows() != 1 {
		t.Fatalf("refresh from empty: blocks=%d rows=%d", ix.NumBlocks(), ix.Rows())
	}
	if lo, hi := ix.Block(0).Int64Range(0); lo != 7 || hi != 7 {
		t.Fatalf("range after refresh: [%d,%d]", lo, hi)
	}
}

func TestSkipIndexSingleRowBlocks(t *testing.T) {
	tb := skipTestTable(t, 5)
	if err := tb.BuildSkipIndex(1); err != nil {
		t.Fatal(err)
	}
	ix := tb.SkipIndex()
	if ix.NumBlocks() != 5 {
		t.Fatalf("blocks=%d, want 5", ix.NumBlocks())
	}
	for b := 0; b < 5; b++ {
		m := ix.Block(b)
		if m.Rows() != 1 {
			t.Fatalf("block %d rows=%d", b, m.Rows())
		}
		want := int64(b * 10)
		if lo, hi := m.Int64Range(0); lo != want || hi != want {
			t.Fatalf("block %d range [%d,%d], want [%d,%d]", b, lo, hi, want, want)
		}
		if !m.MayContainInt64(0, want) {
			t.Fatalf("block %d misses its own value %d", b, want)
		}
		if m.MayContainInt64(0, want+1) {
			t.Fatalf("block %d zone map admits %d", b, want+1)
		}
		if !m.MayContainString(1, fmt.Sprintf("s%04d", b)) {
			t.Fatalf("block %d misses its own string", b)
		}
	}
}

func TestSkipIndexBlockBoundaryAppends(t *testing.T) {
	tb := skipTestTable(t, 0)
	if err := tb.BuildSkipIndex(4); err != nil {
		t.Fatal(err)
	}
	// Append exactly one block, refresh, then exactly one more: the
	// sealed meta must be reused (pointer identity), not rebuilt.
	for i := 0; i < 4; i++ {
		if err := tb.AppendRow(int64(i), fmt.Sprintf("s%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	tb.RefreshSkipIndex()
	first := tb.SkipIndex()
	if first.NumBlocks() != 1 || first.Block(0).Rows() != 4 {
		t.Fatalf("after boundary append: blocks=%d", first.NumBlocks())
	}
	sealed := first.Block(0)
	for i := 4; i < 8; i++ {
		if err := tb.AppendRow(int64(i), fmt.Sprintf("s%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	tb.RefreshSkipIndex()
	second := tb.SkipIndex()
	if second.NumBlocks() != 2 {
		t.Fatalf("blocks=%d, want 2", second.NumBlocks())
	}
	if second.Block(0) != sealed {
		t.Fatal("sealed block meta was rebuilt, want pointer reuse")
	}
	// The earlier index is untouched (copy-on-write).
	if first.NumBlocks() != 1 || first.Rows() != 4 {
		t.Fatal("refresh mutated the previously published index")
	}
}

func TestSkipIndexPartialTailRefresh(t *testing.T) {
	tb := skipTestTable(t, 6) // blockRows=4: one sealed + 2-row tail
	if err := tb.BuildSkipIndex(4); err != nil {
		t.Fatal(err)
	}
	old := tb.SkipIndex()
	if old.NumBlocks() != 2 || old.Block(1).Rows() != 2 {
		t.Fatalf("unexpected initial shape: blocks=%d", old.NumBlocks())
	}
	oldTail := old.Block(1)
	if err := tb.AppendRow(int64(999), "tail"); err != nil {
		t.Fatal(err)
	}
	tb.RefreshSkipIndex()
	nw := tb.SkipIndex()
	if nw.NumBlocks() != 2 || nw.Block(1).Rows() != 3 {
		t.Fatalf("tail not extended: rows=%d", nw.Block(1).Rows())
	}
	if nw.Block(1) == oldTail {
		t.Fatal("tail meta must be rebuilt, not shared")
	}
	// The old index still describes the old prefix: its tail never saw
	// the new value.
	if lo, hi := oldTail.Int64Range(0); hi >= 999 || lo != 40 {
		t.Fatalf("old tail range mutated: [%d,%d]", lo, hi)
	}
	if lo, hi := nw.Block(1).Int64Range(0); hi != 999 || lo != 40 {
		t.Fatalf("new tail range wrong: [%d,%d]", lo, hi)
	}
}

func TestSkipIndexSnapshotMidTailBlock(t *testing.T) {
	tb := skipTestTable(t, 6)
	if err := tb.BuildSkipIndex(4); err != nil {
		t.Fatal(err)
	}
	// Snapshot 5 of 6 rows: the captured index covers MORE rows than the
	// snapshot (6 > 5) — a legal superset; and a snapshot taken before a
	// refresh keeps the old index even as the root's advances.
	snap, err := tb.SnapshotPrefix(5)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SkipIndex() != tb.SkipIndex() {
		t.Fatal("snapshot did not capture the root's index")
	}
	if err := tb.AppendRow(int64(1000), "new"); err != nil {
		t.Fatal(err)
	}
	tb.RefreshSkipIndex()
	if snap.SkipIndex() == tb.SkipIndex() {
		t.Fatal("snapshot index advanced with the root's refresh")
	}
	if snap.SkipIndex().Rows() != 6 || tb.SkipIndex().Rows() != 7 {
		t.Fatalf("rows: snap=%d root=%d", snap.SkipIndex().Rows(), tb.SkipIndex().Rows())
	}
	// Views of the snapshot inherit its captured index and map via
	// RootOffset.
	v, err := snap.View(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v.SkipIndex() != snap.SkipIndex() || v.RootOffset() != 2 {
		t.Fatalf("view index/offset: off=%d", v.RootOffset())
	}
}

func TestSkipIndexViewRejectedAndReorderInvalidates(t *testing.T) {
	tb := skipTestTable(t, 8)
	v, err := tb.View(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.BuildSkipIndex(4); err == nil {
		t.Fatal("BuildSkipIndex on a view succeeded, want error")
	}
	if err := tb.BuildSkipIndex(4); err != nil {
		t.Fatal(err)
	}
	if err := tb.Shuffle(1); err != nil {
		t.Fatal(err)
	}
	if tb.SkipIndex() != nil {
		t.Fatal("shuffle left a stale skip index attached")
	}
	if err := tb.BuildSkipIndex(4); err != nil {
		t.Fatal(err)
	}
	if err := tb.SortByInt64("v"); err != nil {
		t.Fatal(err)
	}
	if tb.SkipIndex() != nil {
		t.Fatal("sort left a stale skip index attached")
	}
}

func TestSkipIndexDefaultBlockRows(t *testing.T) {
	tb := skipTestTable(t, 10)
	if err := tb.BuildSkipIndex(0); err != nil {
		t.Fatal(err)
	}
	if got := tb.SkipIndex().BlockRows(); got != DefaultBlockRows {
		t.Fatalf("blockRows=%d, want %d", got, DefaultBlockRows)
	}
}
