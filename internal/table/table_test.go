package table

import (
	"testing"
	"testing/quick"
)

func productsSchema() Schema {
	return Schema{
		{Name: "name", Type: String},
		{Name: "seller", Type: String},
		{Name: "price", Type: Int64},
	}
}

func productsTable(t *testing.T) *Table {
	t.Helper()
	tbl := MustNew(productsSchema())
	rows := []struct {
		name, seller string
		price        int64
	}{
		{"Burger", "McCheetah", 4},
		{"Pizza", "Papizza", 7},
		{"Fries", "McCheetah", 2},
		{"Jello", "JellyFish", 5},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.name, r.seller, r.price); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestSchemaValidate(t *testing.T) {
	if err := (Schema{}).Validate(); err == nil {
		t.Fatal("empty schema must fail")
	}
	if err := (Schema{{Name: "a", Type: Int64}, {Name: "a", Type: String}}).Validate(); err == nil {
		t.Fatal("duplicate names must fail")
	}
	if err := (Schema{{Name: "", Type: Int64}}).Validate(); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := productsSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
}

func TestSchemaIndex(t *testing.T) {
	s := productsSchema()
	if s.Index("seller") != 1 {
		t.Fatal("Index(seller)")
	}
	if s.Index("nope") != -1 {
		t.Fatal("Index(nope)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex should panic on unknown column")
		}
	}()
	s.MustIndex("nope")
}

func TestAppendAndAccess(t *testing.T) {
	tbl := productsTable(t)
	if tbl.NumRows() != 4 || tbl.NumCols() != 3 {
		t.Fatalf("dims = %d x %d", tbl.NumRows(), tbl.NumCols())
	}
	if got := tbl.StringAt(0, 1); got != "Pizza" {
		t.Fatalf("StringAt = %q", got)
	}
	if got := tbl.Int64At(2, 3); got != 5 {
		t.Fatalf("Int64At = %d", got)
	}
	row := tbl.RowAt(2)
	if row.String("seller") != "McCheetah" || row.Int64("price") != 2 {
		t.Fatalf("row values wrong: %v", row.Values())
	}
	if vals := row.Values(); len(vals) != 3 || vals[0].(string) != "Fries" {
		t.Fatalf("Values = %v", vals)
	}
}

func TestAppendRowTypeErrors(t *testing.T) {
	tbl := MustNew(productsSchema())
	if err := tbl.AppendRow("a", "b"); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := tbl.AppendRow("a", "b", "notint"); err == nil {
		t.Fatal("wrong type accepted")
	}
	if err := tbl.AppendRow(1, "b", int64(3)); err == nil {
		t.Fatal("int where string expected accepted")
	}
	// Plain int is accepted for Int64 columns for ergonomic literals.
	if err := tbl.AppendRow("a", "b", 3); err != nil {
		t.Fatalf("int literal rejected: %v", err)
	}
}

func TestAppendInt64Row(t *testing.T) {
	tbl := MustNew(Schema{{Name: "a", Type: Int64}, {Name: "b", Type: Int64}})
	if err := tbl.AppendInt64Row(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendInt64Row(1); err == nil {
		t.Fatal("wrong arity accepted")
	}
	mixed := MustNew(productsSchema())
	if err := mixed.AppendInt64Row(1, 2, 3); err == nil {
		t.Fatal("AppendInt64Row on string column accepted")
	}
	if got := tbl.Int64Col(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Int64Col = %v", got)
	}
}

func TestViewAndPartition(t *testing.T) {
	tbl := productsTable(t)
	v, err := tbl.View(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumRows() != 2 {
		t.Fatalf("view rows = %d", v.NumRows())
	}
	if v.StringAt(0, 0) != "Pizza" || v.StringAt(0, 1) != "Fries" {
		t.Fatal("view window incorrect")
	}
	if err := v.AppendRow("x", "y", int64(0)); err == nil {
		t.Fatal("append to view accepted")
	}
	// View of a view stays anchored to the root table.
	vv, err := v.View(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vv.StringAt(0, 0) != "Fries" {
		t.Fatal("nested view window incorrect")
	}
	if _, err := tbl.View(3, 2); err == nil {
		t.Fatal("invalid range accepted")
	}

	parts, err := tbl.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += p.NumRows()
	}
	if total != tbl.NumRows() {
		t.Fatalf("partitions cover %d rows, want %d", total, tbl.NumRows())
	}
	if _, err := tbl.Partition(0); err == nil {
		t.Fatal("partition(0) accepted")
	}
}

func TestPartitionCoversAllRowsProperty(t *testing.T) {
	f := func(nRows, k uint8) bool {
		n := int(nRows)%200 + 1
		parts := int(k)%10 + 1
		tbl := MustNew(Schema{{Name: "v", Type: Int64}})
		for i := 0; i < n; i++ {
			if err := tbl.AppendInt64Row(int64(i)); err != nil {
				return false
			}
		}
		ps, err := tbl.Partition(parts)
		if err != nil {
			return false
		}
		// Concatenating partitions must reproduce the original order.
		idx := 0
		for _, p := range ps {
			for r := 0; r < p.NumRows(); r++ {
				if p.Int64At(0, r) != int64(idx) {
					return false
				}
				idx++
			}
		}
		return idx == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProject(t *testing.T) {
	tbl := productsTable(t)
	p, err := tbl.Project("price", "name")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.NumRows() != 4 {
		t.Fatalf("projected dims %dx%d", p.NumRows(), p.NumCols())
	}
	if p.Int64At(0, 1) != 7 || p.StringAt(1, 1) != "Pizza" {
		t.Fatal("projection columns wrong")
	}
	if _, err := tbl.Project("ghost"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestSortByInt64(t *testing.T) {
	tbl := productsTable(t)
	if err := tbl.SortByInt64("price"); err != nil {
		t.Fatal(err)
	}
	prices := tbl.Int64Col(2)
	for i := 1; i < len(prices); i++ {
		if prices[i-1] > prices[i] {
			t.Fatalf("not sorted: %v", prices)
		}
	}
	// Row integrity: Fries must still cost 2.
	found := false
	for r := 0; r < tbl.NumRows(); r++ {
		if tbl.StringAt(0, r) == "Fries" {
			found = true
			if tbl.Int64At(2, r) != 2 {
				t.Fatal("sort broke row alignment")
			}
		}
	}
	if !found {
		t.Fatal("row lost in sort")
	}
	if err := tbl.SortByInt64("name"); err == nil {
		t.Fatal("sorting by string column via SortByInt64 accepted")
	}
	if err := tbl.SortByInt64("ghost"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	tbl := MustNew(Schema{{Name: "v", Type: Int64}})
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tbl.AppendInt64Row(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Shuffle(42); err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, n)
	moved := 0
	for r := 0; r < n; r++ {
		v := tbl.Int64At(0, r)
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("shuffle is not a permutation at row %d (v=%d)", r, v)
		}
		seen[v] = true
		if v != int64(r) {
			moved++
		}
	}
	if moved < n/2 {
		t.Fatalf("shuffle barely moved anything: %d/%d", moved, n)
	}
	// Determinism: same seed, same permutation.
	tbl2 := MustNew(Schema{{Name: "v", Type: Int64}})
	for i := 0; i < n; i++ {
		_ = tbl2.AppendInt64Row(int64(i))
	}
	_ = tbl2.Shuffle(42)
	tbl3 := MustNew(Schema{{Name: "v", Type: Int64}})
	for i := 0; i < n; i++ {
		_ = tbl3.AppendInt64Row(int64(i))
	}
	_ = tbl3.Shuffle(42)
	for r := 0; r < n; r++ {
		if tbl2.Int64At(0, r) != tbl3.Int64At(0, r) {
			t.Fatal("shuffle not deterministic for equal seeds")
		}
	}
}

func TestAppendRowFrom(t *testing.T) {
	src := productsTable(t)
	dst := MustNew(productsSchema())
	for r := 0; r < src.NumRows(); r++ {
		if err := dst.AppendRowFrom(src, r); err != nil {
			t.Fatal(err)
		}
	}
	if dst.NumRows() != src.NumRows() {
		t.Fatal("row count mismatch")
	}
	if dst.StringAt(0, 3) != "Jello" || dst.Int64At(2, 0) != 4 {
		t.Fatal("copied values wrong")
	}
	other := MustNew(Schema{{Name: "x", Type: Int64}})
	if err := other.AppendRowFrom(src, 0); err == nil {
		t.Fatal("mismatched schema accepted")
	}
}

func TestGrowPreservesData(t *testing.T) {
	tbl := productsTable(t)
	tbl.Grow(1000)
	if tbl.NumRows() != 4 || tbl.StringAt(0, 0) != "Burger" {
		t.Fatal("Grow corrupted table")
	}
}

func TestInt64ColPanicsOnWrongType(t *testing.T) {
	tbl := productsTable(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Int64Col on string column should panic")
		}
	}()
	tbl.Int64Col(0)
}

func TestStringColPanicsOnWrongType(t *testing.T) {
	tbl := productsTable(t)
	defer func() {
		if recover() == nil {
			t.Fatal("StringCol on int column should panic")
		}
	}()
	tbl.StringCol(2)
}

func BenchmarkAppendInt64Row(b *testing.B) {
	tbl := MustNew(Schema{{Name: "a", Type: Int64}, {Name: "b", Type: Int64}})
	tbl.Grow(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tbl.AppendInt64Row(int64(i), int64(i*2))
	}
}

func BenchmarkInt64ColScan(b *testing.B) {
	tbl := MustNew(Schema{{Name: "a", Type: Int64}})
	const n = 1 << 16
	for i := 0; i < n; i++ {
		_ = tbl.AppendInt64Row(int64(i))
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		col := tbl.Int64Col(0)
		for _, v := range col {
			sink += v
		}
	}
	_ = sink
}
