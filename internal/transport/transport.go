// Package transport implements Cheetah's reliability protocol (§7.2) over
// a lossy datagram network. The protocol's challenge: the switch prunes
// packets on purpose, so the master cannot detect loss from sequence gaps
// alone. The switch therefore participates:
//
//   - Workers number entries with consecutive sequence numbers, keep a
//     retransmission timer per un-ACKed packet, and resend on expiry.
//   - The switch keeps, per flow, the last sequence number X it
//     processed. For an arriving DATA with sequence Y:
//     Y == X+1 → process (prune or forward); on prune the *switch* ACKs;
//     Y ≤ X   → a retransmission of a processed packet: forward to the
//     master *without* reprocessing (the master ACKs);
//     Y >  X+1 → an earlier packet was lost before the switch; drop and
//     wait for the retransmission of X+1.
//   - The master ACKs every DATA it receives and answers FIN with FINACK.
//
// Every packet therefore either reaches the master or is pruned-and-ACKed
// by the switch, and duplicate deliveries are harmless because every
// Cheetah algorithm tolerates forwarding supersets (§7.2).
package transport

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"cheetah/internal/netsim"
	"cheetah/internal/switchsim"
	"cheetah/internal/wire"
)

// DefaultRTO is the default retransmission timeout.
const DefaultRTO = 20 * time.Millisecond

// DefaultWindow bounds un-ACKed packets in flight per worker.
const DefaultWindow = 512

// WorkerConfig configures a protocol sender.
type WorkerConfig struct {
	// FlowID identifies this worker's stream.
	FlowID uint32
	// SwitchAddr is the next hop (all data flows through the switch).
	SwitchAddr string
	// RTO is the retransmission timeout (0 selects DefaultRTO).
	RTO time.Duration
	// Window bounds in-flight packets (0 selects DefaultWindow).
	Window int
	// MaxRetries bounds per-packet retransmissions before the worker
	// reports a broken flow (0 selects 50).
	MaxRetries int
}

// Worker sends one flow of entries reliably through the switch.
type Worker struct {
	cfg WorkerConfig
	ep  *netsim.Endpoint

	mu      sync.Mutex
	acked   map[uint64]bool
	retried map[uint64]int

	// Retransmissions counts data packets sent more than once.
	Retransmissions uint64
}

// NewWorker creates a protocol sender on ep.
func NewWorker(ep *netsim.Endpoint, cfg WorkerConfig) (*Worker, error) {
	if cfg.SwitchAddr == "" {
		return nil, fmt.Errorf("transport: worker needs a switch address")
	}
	if cfg.RTO <= 0 {
		cfg.RTO = DefaultRTO
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}
	return &Worker{
		cfg:     cfg,
		ep:      ep,
		acked:   make(map[uint64]bool),
		retried: make(map[uint64]int),
	}, nil
}

// Run transmits entries (sequence numbers 1..len(entries)) and blocks
// until every packet is ACKed (by switch or master) and the FIN handshake
// completes, or ctx is cancelled, or a packet exhausts MaxRetries.
func (w *Worker) Run(ctx context.Context, entries [][]uint64) error {
	total := uint64(len(entries))
	buf := make([]byte, 0, 64)
	send := func(seq uint64) error {
		pkt := wire.NewData(w.cfg.FlowID, seq, entries[seq-1])
		b, err := pkt.AppendTo(buf[:0])
		if err != nil {
			return err
		}
		return w.ep.Send(w.cfg.SwitchAddr, b)
	}

	nextSend := uint64(1) // next fresh sequence to transmit
	ackedCount := uint64(0)
	inflight := make(map[uint64]time.Time)
	expired := make([]uint64, 0, w.cfg.Window)

	ticker := time.NewTicker(w.cfg.RTO / 2)
	defer ticker.Stop()

	for ackedCount < total {
		// Fill the window with fresh packets.
		for nextSend <= total && len(inflight) < w.cfg.Window {
			if err := send(nextSend); err != nil {
				return err
			}
			inflight[nextSend] = time.Now()
			nextSend++
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case msg := <-w.ep.Inbox():
			var p wire.Packet
			if err := p.DecodeFrom(msg.Data); err != nil {
				continue // corrupt frame: ignore
			}
			if p.Type != wire.MsgAck || p.FlowID != w.cfg.FlowID {
				continue
			}
			w.mu.Lock()
			dup := w.acked[p.Seq]
			w.acked[p.Seq] = true
			w.mu.Unlock()
			if !dup && p.Seq >= 1 && p.Seq <= total {
				ackedCount++
				delete(inflight, p.Seq)
			}
		case <-ticker.C:
			now := time.Now()
			// Retransmit in ascending sequence order: the switch drops
			// any packet arriving ahead of a gap (Y > X+1), so resends
			// must appear in order for X to advance — per-packet timers
			// on real hardware expire in send order and give the same
			// behaviour.
			expired = expired[:0]
			for seq, sent := range inflight {
				if now.Sub(sent) >= w.cfg.RTO {
					expired = append(expired, seq)
				}
			}
			sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
			// Only the head of the window burns retry budget: packets
			// behind a sequence gap are being *blocked* by the switch's
			// in-order rule, not lost — the gap rule gives the protocol
			// go-back-N head-of-line behaviour under loss, and counting
			// blocked packets would declare healthy flows dead.
			head := uint64(0)
			for seq := range inflight {
				if head == 0 || seq < head {
					head = seq
				}
			}
			for _, seq := range expired {
				if seq == head {
					w.mu.Lock()
					w.retried[seq]++
					tries := w.retried[seq]
					w.mu.Unlock()
					if tries > w.cfg.MaxRetries {
						return fmt.Errorf("transport: flow %d seq %d exceeded %d retries",
							w.cfg.FlowID, seq, w.cfg.MaxRetries)
					}
				}
				if err := send(seq); err != nil {
					return err
				}
				w.Retransmissions++
				inflight[seq] = now
			}
		}
	}
	return w.finHandshake(ctx, total)
}

// finHandshake sends FIN until FINACK arrives.
func (w *Worker) finHandshake(ctx context.Context, lastSeq uint64) error {
	fin := wire.NewFin(w.cfg.FlowID, lastSeq)
	buf, err := fin.AppendTo(nil)
	if err != nil {
		return err
	}
	timer := time.NewTicker(w.cfg.RTO)
	defer timer.Stop()
	if err := w.ep.Send(w.cfg.SwitchAddr, buf); err != nil {
		return err
	}
	tries := 0
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case msg := <-w.ep.Inbox():
			var p wire.Packet
			if err := p.DecodeFrom(msg.Data); err != nil {
				continue
			}
			if p.Type == wire.MsgFinAck && p.FlowID == w.cfg.FlowID {
				return nil
			}
		case <-timer.C:
			tries++
			if tries > w.cfg.MaxRetries {
				return fmt.Errorf("transport: flow %d FIN exceeded %d retries", w.cfg.FlowID, w.cfg.MaxRetries)
			}
			if err := w.ep.Send(w.cfg.SwitchAddr, buf); err != nil {
				return err
			}
		}
	}
}

// Dataplane is the pruning interface the switch node consults; the
// switchsim.Pipeline satisfies it.
type Dataplane interface {
	Process(flowID uint32, vals []uint64) switchsim.Decision
}

// Switch is the protocol middlebox: it runs the dataplane over in-order
// fresh packets and implements the X/Y sequence rules above.
type Switch struct {
	ep         *netsim.Endpoint
	masterAddr string
	dataplane  Dataplane

	mu      sync.Mutex
	lastSeq map[uint32]uint64 // X per flow
	workers map[uint32]string // reverse path for prune-ACKs

	// Counters for tests and the evaluation harness.
	Pruned              uint64
	ForwardedOK         uint64
	ForwardedRetransmit uint64
	DroppedGap          uint64
}

// NewSwitch creates the protocol switch.
func NewSwitch(ep *netsim.Endpoint, masterAddr string, dp Dataplane) (*Switch, error) {
	if masterAddr == "" {
		return nil, fmt.Errorf("transport: switch needs a master address")
	}
	if dp == nil {
		return nil, fmt.Errorf("transport: switch needs a dataplane")
	}
	return &Switch{
		ep:         ep,
		masterAddr: masterAddr,
		dataplane:  dp,
		lastSeq:    make(map[uint32]uint64),
		workers:    make(map[uint32]string),
	}, nil
}

// Register installs the reverse path for a flow's prune-ACKs. The query
// planner calls this when it installs the query's match-action rules.
func (s *Switch) Register(flowID uint32, workerAddr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workers[flowID] = workerAddr
	s.lastSeq[flowID] = 0
}

// Run pumps the switch until ctx is cancelled.
func (s *Switch) Run(ctx context.Context) {
	buf := make([]byte, 0, 64)
	var p wire.Packet
	for {
		select {
		case <-ctx.Done():
			return
		case msg := <-s.ep.Inbox():
			if err := p.DecodeFrom(msg.Data); err != nil {
				continue
			}
			switch p.Type {
			case wire.MsgData:
				buf = s.handleData(&p, msg.Data, buf)
			case wire.MsgFin:
				// FIN travels to the master, which answers FINACK.
				_ = s.ep.Send(s.masterAddr, msg.Data)
			case wire.MsgAck, wire.MsgFinAck:
				// Control traffic heading back to the worker.
				s.mu.Lock()
				wa := s.workers[p.FlowID]
				s.mu.Unlock()
				if wa != "" {
					_ = s.ep.Send(wa, msg.Data)
				}
			}
		}
	}
}

// handleData applies the §7.2 sequence rules to one DATA packet.
func (s *Switch) handleData(p *wire.Packet, raw []byte, buf []byte) []byte {
	s.mu.Lock()
	x, known := s.lastSeq[p.FlowID]
	workerAddr := s.workers[p.FlowID]
	s.mu.Unlock()
	if !known {
		// Unregistered flow: transparent forwarding (§3).
		_ = s.ep.Send(s.masterAddr, raw)
		return buf
	}
	y := p.Seq
	switch {
	case y == x+1:
		s.mu.Lock()
		s.lastSeq[p.FlowID] = y
		s.mu.Unlock()
		if s.dataplane.Process(p.FlowID, p.Values) == switchsim.Prune {
			s.Pruned++
			ack := wire.NewAck(p.FlowID, y)
			b, err := ack.AppendTo(buf[:0])
			if err == nil && workerAddr != "" {
				_ = s.ep.Send(workerAddr, b)
			}
			return b
		}
		s.ForwardedOK++
		_ = s.ep.Send(s.masterAddr, raw)
	case y <= x:
		// Retransmission of an already-processed packet: forward without
		// reprocessing so switch state is not corrupted; the master ACKs.
		s.ForwardedRetransmit++
		_ = s.ep.Send(s.masterAddr, raw)
	default: // y > x+1
		// A predecessor was lost before the switch; drop and await its
		// retransmission to preserve in-order processing.
		s.DroppedGap++
	}
	return buf
}

// Delivery is one entry handed to the master application.
type Delivery struct {
	FlowID uint32
	Seq    uint64
	Values []uint64
}

// Master is the protocol receiver: it ACKs every delivery back through
// the switch and completes FIN handshakes.
type Master struct {
	ep         *netsim.Endpoint
	switchAddr string

	mu        sync.Mutex
	finSeen   map[uint32]uint64
	delivered map[uint32]uint64

	// Deliveries receives entries in arrival order. The channel is owned
	// by the Master and closed when Run returns.
	Deliveries chan Delivery
	// FlowDone receives each flow's ID once its FIN arrives.
	FlowDone chan uint32
}

// NewMaster creates the protocol receiver. ACKs return through
// switchAddr (the reverse path the paper uses: the switch sits between
// master and workers in both directions).
func NewMaster(ep *netsim.Endpoint, switchAddr string) (*Master, error) {
	if switchAddr == "" {
		return nil, fmt.Errorf("transport: master needs a switch address")
	}
	return &Master{
		ep:         ep,
		switchAddr: switchAddr,
		finSeen:    make(map[uint32]uint64),
		delivered:  make(map[uint32]uint64),
		Deliveries: make(chan Delivery, 4096),
		FlowDone:   make(chan uint32, 64),
	}, nil
}

// DeliveredCount returns the number of entries delivered for a flow.
func (m *Master) DeliveredCount(flowID uint32) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delivered[flowID]
}

// Run pumps the master until ctx is cancelled, then closes Deliveries.
func (m *Master) Run(ctx context.Context) {
	defer close(m.Deliveries)
	buf := make([]byte, 0, 32)
	for {
		select {
		case <-ctx.Done():
			return
		case msg := <-m.ep.Inbox():
			var p wire.Packet
			if err := p.DecodeFrom(msg.Data); err != nil {
				continue
			}
			switch p.Type {
			case wire.MsgData:
				// ACK first (even for duplicates), then deliver.
				ack := wire.NewAck(p.FlowID, p.Seq)
				b, err := ack.AppendTo(buf[:0])
				if err == nil {
					buf = b
					_ = m.ep.Send(m.switchAddr, b)
				}
				vals := append([]uint64(nil), p.Values...)
				m.mu.Lock()
				m.delivered[p.FlowID]++
				m.mu.Unlock()
				select {
				case m.Deliveries <- Delivery{FlowID: p.FlowID, Seq: p.Seq, Values: vals}:
				case <-ctx.Done():
					return
				}
			case wire.MsgFin:
				fa := wire.NewFinAck(p.FlowID, p.Seq)
				b, err := fa.AppendTo(buf[:0])
				if err == nil {
					buf = b
					_ = m.ep.Send(m.switchAddr, b)
				}
				m.mu.Lock()
				_, seen := m.finSeen[p.FlowID]
				m.finSeen[p.FlowID] = p.Seq
				m.mu.Unlock()
				if !seen {
					select {
					case m.FlowDone <- p.FlowID:
					default:
					}
				}
			}
		}
	}
}
