package transport

import (
	"context"
	"sync"
	"testing"
	"time"

	"cheetah/internal/cache"
	"cheetah/internal/netsim"
	"cheetah/internal/prune"
	"cheetah/internal/switchsim"
)

// harness wires workers → switch → master over a netsim network with a
// DISTINCT pruner on the given flows.
type harness struct {
	net     *netsim.Network
	sw      *Switch
	master  *Master
	pl      *switchsim.Pipeline
	cancel  context.CancelFunc
	writers []*Worker
}

func newHarness(t *testing.T, seed uint64, flows int) *harness {
	t.Helper()
	n := netsim.New(seed)
	swEp := n.Endpoint("switch", 1<<16)
	maEp := n.Endpoint("master", 1<<16)
	pl, err := switchsim.NewPipeline(switchsim.Tofino())
	if err != nil {
		t.Fatal(err)
	}
	for f := 1; f <= flows; f++ {
		d, err := prune.NewDistinct(prune.DistinctConfig{
			Rows: 256, Cols: 2, Policy: cache.LRU, Seed: uint64(f),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := pl.Install(uint32(f), d); err != nil {
			t.Fatal(err)
		}
	}
	sw, err := NewSwitch(swEp, "master", pl)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := NewMaster(maEp, "switch")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go sw.Run(ctx)
	go ma.Run(ctx)
	h := &harness{net: n, sw: sw, master: ma, pl: pl, cancel: cancel}
	t.Cleanup(cancel)
	return h
}

func (h *harness) addWorker(t *testing.T, flowID uint32) *Worker {
	t.Helper()
	name := "worker" + string(rune('0'+flowID))
	ep := h.net.Endpoint(name, 1<<16)
	w, err := NewWorker(ep, WorkerConfig{
		FlowID:     flowID,
		SwitchAddr: "switch",
		RTO:        10 * time.Millisecond,
		Window:     64,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.sw.Register(flowID, name)
	h.writers = append(h.writers, w)
	return w
}

func entriesMod(n int, mod uint64) [][]uint64 {
	out := make([][]uint64, n)
	for i := range out {
		out[i] = []uint64{uint64(i) % mod}
	}
	return out
}

// collect drains deliveries until the flow-done signal and quiescence.
func collect(t *testing.T, m *Master, wantFlows int, timeout time.Duration) map[uint32][]Delivery {
	t.Helper()
	got := map[uint32][]Delivery{}
	done := 0
	deadline := time.After(timeout)
	for done < wantFlows {
		select {
		case d := <-m.Deliveries:
			got[d.FlowID] = append(got[d.FlowID], d)
		case <-m.FlowDone:
			done++
		case <-deadline:
			t.Fatalf("timeout waiting for %d flows (done=%d)", wantFlows, done)
		}
	}
	// Drain whatever already arrived.
	for {
		select {
		case d := <-m.Deliveries:
			got[d.FlowID] = append(got[d.FlowID], d)
		default:
			return got
		}
	}
}

func TestLosslessEndToEnd(t *testing.T) {
	h := newHarness(t, 1, 1)
	w := h.addWorker(t, 1)
	const n = 2000
	entries := entriesMod(n, 100) // 100 distinct values, heavy duplication
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(context.Background(), entries) }()
	got := collect(t, h.master, 1, 5*time.Second)
	if err := <-errCh; err != nil {
		t.Fatalf("worker: %v", err)
	}
	// Conservation: every packet either pruned at switch or delivered.
	if h.sw.Pruned+uint64(len(got[1])) != n {
		t.Fatalf("pruned %d + delivered %d != %d", h.sw.Pruned, len(got[1]), n)
	}
	// Correctness: all 100 distinct values delivered.
	seen := map[uint64]bool{}
	for _, d := range got[1] {
		seen[d.Values[0]] = true
	}
	if len(seen) != 100 {
		t.Fatalf("distinct values delivered: %d, want 100", len(seen))
	}
	// With 256x2 rows and 100 distinct values, pruning should be heavy.
	if h.sw.Pruned < n/2 {
		t.Fatalf("switch pruned only %d of %d", h.sw.Pruned, n)
	}
	if w.Retransmissions != 0 {
		t.Fatalf("lossless run retransmitted %d packets", w.Retransmissions)
	}
}

func TestLossyEndToEndCorrectness(t *testing.T) {
	h := newHarness(t, 7, 1)
	w := h.addWorker(t, 1)
	// 15% loss on every hop, both directions.
	for _, pair := range [][2]string{{"worker1", "switch"}, {"switch", "master"}, {"switch", "worker1"}, {"master", "switch"}} {
		if err := h.net.SetLoss(pair[0], pair[1], 0.15); err != nil {
			t.Fatal(err)
		}
	}
	const n = 1000
	const distinct = 50
	entries := entriesMod(n, distinct)
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(context.Background(), entries) }()
	got := collect(t, h.master, 1, 20*time.Second)
	if err := <-errCh; err != nil {
		t.Fatalf("worker: %v", err)
	}
	if w.Retransmissions == 0 {
		t.Fatal("15%% loss produced no retransmissions")
	}
	// The invariant that survives loss (§7.2): every distinct value is
	// delivered at least once; duplicates are allowed.
	seen := map[uint64]bool{}
	for _, d := range got[1] {
		seen[d.Values[0]] = true
	}
	if len(seen) != distinct {
		t.Fatalf("distinct values delivered: %d, want %d", len(seen), distinct)
	}
	// The switch must have both pruned and observed retransmissions.
	if h.sw.Pruned == 0 {
		t.Fatal("switch pruned nothing")
	}
	if h.sw.DroppedGap == 0 {
		t.Fatal("no sequence gaps observed at 15% loss — loss injection broken?")
	}
}

func TestMultipleFlowsConcurrently(t *testing.T) {
	const flows = 3
	h := newHarness(t, 3, flows)
	var wg sync.WaitGroup
	errs := make([]error, flows)
	for f := 1; f <= flows; f++ {
		w := h.addWorker(t, uint32(f))
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			errs[i] = w.Run(context.Background(), entriesMod(500, 40))
		}(f-1, w)
	}
	got := collect(t, h.master, flows, 10*time.Second)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i+1, err)
		}
	}
	for f := 1; f <= flows; f++ {
		seen := map[uint64]bool{}
		for _, d := range got[uint32(f)] {
			seen[d.Values[0]] = true
		}
		if len(seen) != 40 {
			t.Fatalf("flow %d delivered %d distinct, want 40", f, len(seen))
		}
	}
}

func TestWorkerFailsAfterMaxRetries(t *testing.T) {
	n := netsim.New(5)
	wEp := n.Endpoint("w", 64)
	n.Endpoint("switch", 64) // exists but nothing pumps it
	w, err := NewWorker(wEp, WorkerConfig{
		FlowID: 1, SwitchAddr: "switch",
		RTO: time.Millisecond, MaxRetries: 3, Window: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(context.Background(), entriesMod(4, 4))
	if err == nil {
		t.Fatal("worker succeeded with a dead switch")
	}
}

func TestWorkerContextCancel(t *testing.T) {
	n := netsim.New(5)
	wEp := n.Endpoint("w", 64)
	n.Endpoint("switch", 64)
	w, _ := NewWorker(wEp, WorkerConfig{FlowID: 1, SwitchAddr: "switch", RTO: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := w.Run(ctx, entriesMod(4, 4)); err == nil {
		t.Fatal("cancelled worker returned nil")
	}
}

func TestConstructorValidation(t *testing.T) {
	n := netsim.New(1)
	ep := n.Endpoint("x", 4)
	if _, err := NewWorker(ep, WorkerConfig{FlowID: 1}); err == nil {
		t.Fatal("worker without switch addr accepted")
	}
	if _, err := NewSwitch(ep, "", nil); err == nil {
		t.Fatal("switch without master accepted")
	}
	if _, err := NewSwitch(ep, "m", nil); err == nil {
		t.Fatal("switch without dataplane accepted")
	}
	if _, err := NewMaster(ep, ""); err == nil {
		t.Fatal("master without switch addr accepted")
	}
}

func TestUnregisteredFlowPassesThrough(t *testing.T) {
	// §3: the switch is transparent to traffic without installed rules.
	h := newHarness(t, 11, 1)
	name := "stranger"
	ep := h.net.Endpoint(name, 256)
	w, err := NewWorker(ep, WorkerConfig{FlowID: 99, SwitchAddr: "switch", RTO: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Flow 99 is NOT registered on the switch; ACKs come from the master
	// but must route back through the switch, which needs the reverse
	// path. Register only the reverse path (no pruner on the pipeline).
	h.sw.Register(99, name)
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(context.Background(), entriesMod(50, 50)) }()
	got := collect(t, h.master, 1, 5*time.Second)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if len(got[99]) != 50 {
		t.Fatalf("delivered %d, want all 50 (no pruner installed)", len(got[99]))
	}
}

func TestMasterDeliveredCount(t *testing.T) {
	h := newHarness(t, 13, 1)
	w := h.addWorker(t, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(context.Background(), entriesMod(100, 100)) }()
	collect(t, h.master, 1, 5*time.Second)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if h.master.DeliveredCount(1) != 100 {
		t.Fatalf("DeliveredCount = %d", h.master.DeliveredCount(1))
	}
}
