module cheetah

go 1.24
