// Command server demonstrates the network front door: the same fabric
// the other examples drive in-process, served over TCP through the wire
// frame protocol (cmd/cheetahd is the standalone daemon; here the
// server runs in-process so the example is self-contained). Three
// clients share one server:
//
//   - "analytics" submits one-shot queries with QoS priorities;
//   - "feed" streams row batches into the served table over the wire;
//   - "dash" holds a standing TOP N subscription whose pushed updates
//     stay fresh as the feed's appends commit, behind a credit-based
//     send window (a slow dashboard sees the newest result, not a
//     backlog of stale ones).
//
// The closing act is the equivalence check that anchors the whole
// subsystem: after the feed finishes, the answer fetched over TCP is
// bit-identical to ExecDirect on a local copy of the same rows. Then
// the server drains SIGTERM-style: in-flight work finishes, the
// subscription closes cleanly, and the admission counters confirm
// nothing was left holding a switch program.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cheetah"
	"cheetah/internal/workload"
)

func main() {
	ctx := context.Background()

	// The full dataset, pre-generated: the served table starts with the
	// first 12k rows, the rest arrives over the wire.
	const totalRows, seededRows, batchRows = 20_000, 12_000, 2_000
	src, err := workload.UserVisits(workload.DefaultUserVisits(totalRows, 1))
	if err != nil {
		log.Fatal(err)
	}
	live, err := cheetah.NewTable(src.Schema())
	if err != nil {
		log.Fatal(err)
	}
	if err := live.AppendRowsFrom(src, seqRows(0, seededRows)); err != nil {
		log.Fatal(err)
	}

	// Serve it. Port 0 picks a free port; cmd/cheetahd is this call
	// plus flags.
	srv, err := cheetah.ListenNet("127.0.0.1:0", cheetah.ServerOptions{
		Tables:  map[string]*cheetah.Table{"visits": live},
		Primary: "visits",
		Plan:    cheetah.SessionOptions{Workers: 2, Switches: 2, Seed: 1},
		Stream:  &cheetah.StreamOptions{},
	})
	if err != nil {
		log.Fatal(err)
	}
	addr := srv.Addr().String()
	fmt.Printf("serving visits (%d rows seeded) on %s\n\n", seededRows, addr)

	// Client 1: "dash" holds a standing TOP N over the streamed table.
	dash, err := cheetah.DialNet(addr, "dash")
	if err != nil {
		log.Fatal(err)
	}
	defer dash.Close()
	topn := &cheetah.Query{Kind: cheetah.KindTopN, OrderCol: "adRevenue", N: 5}
	spec, err := cheetah.WireSpecOf(topn, "visits", "")
	if err != nil {
		log.Fatal(err)
	}
	sub, err := dash.Subscribe(ctx, *spec, cheetah.NetSubscribeOptions{Credits: 1})
	if err != nil {
		log.Fatal(err)
	}
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		for u := range sub.Updates() {
			fmt.Printf("dash: top-5 refreshed at stream version %d (top adRevenue %s)\n",
				u.Version, u.Rows[0][len(u.Rows[0])-1])
			// Returning the credit reopens the one-update send window;
			// updates skipped while it was closed coalesce latest-wins.
			if err := sub.Credit(1); err != nil {
				return
			}
		}
	}()

	// Client 2: "feed" streams the remaining rows in over the wire.
	feed, err := cheetah.DialNet(addr, "feed")
	if err != nil {
		log.Fatal(err)
	}
	defer feed.Close()
	for lo := seededRows; lo < totalRows; lo += batchRows {
		batch, err := cheetah.NewTable(src.Schema())
		if err != nil {
			log.Fatal(err)
		}
		if err := batch.AppendRowsFrom(src, seqRows(lo, lo+batchRows)); err != nil {
			log.Fatal(err)
		}
		ver, err := feed.Append(ctx, batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("feed: +%d rows committed as version %d\n", batchRows, ver)
	}

	// Client 3: "analytics" runs one-shot queries with QoS terms.
	ana, err := cheetah.DialNet(addr, "analytics")
	if err != nil {
		log.Fatal(err)
	}
	defer ana.Close()
	sums, err := ana.QueryEngine(ctx,
		&cheetah.Query{Kind: cheetah.KindGroupBySum, KeyCol: "countryCode", AggCol: "adRevenue"},
		"visits", "", cheetah.NetQueryOptions{Priority: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalytics: GROUP-BY-SUM over the wire: %d groups\n", len(sums.Rows))

	// The anchor invariant: the remote answer equals exact direct
	// execution on a local copy of the same rows.
	got, err := ana.QueryEngine(ctx, topn, "visits", "", cheetah.NetQueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	localQ := *topn
	localQ.Table = src
	want, err := cheetah.ExecDirect(&localQ)
	if err != nil {
		log.Fatal(err)
	}
	got.Sort()
	want.Sort()
	if !got.Equal(want) {
		log.Fatal("remote TOP N diverges from local ExecDirect")
	}
	fmt.Println("analytics: remote TOP N == local ExecDirect, bit for bit")

	// Graceful drain, the SIGTERM path: new work would get a retryable
	// error, in-flight queries finish, subscriptions close after their
	// final update.
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Fatal(err)
	}
	<-subDone
	stats := srv.Stats()
	fmt.Printf("\ndrained clean: %d admitted, %d shed, %d active leases\n",
		stats.Admitted, stats.Shed, stats.Active)
}

// seqRows returns the index range [lo, hi).
func seqRows(lo, hi int) []int {
	rows := make([]int, hi-lo)
	for i := range rows {
		rows[i] = lo + i
	}
	return rows
}
