// Command tpch runs the TPC-H Q3-shaped join through the session API —
// the planner sizes the Bloom filters for the key cardinality and picks
// the symmetric or asymmetric (§4.3) two-pass strategy — then reruns the
// hand-configured variants of Table 2 through the low-level API as an
// ablation grid.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"cheetah"
)

func main() {
	orders := flag.Int("orders", 50_000, "TPC-H orders rows (lineitem is 4x)")
	seed := flag.Uint64("seed", 7, "generator seed")
	flag.Parse()

	ordersT, lineitemT, err := tpcTables(*orders, *seed)
	if err != nil {
		log.Fatal(err)
	}

	db, err := cheetah.Open(ordersT, cheetah.SessionOptions{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	b := db.Select().Join(lineitemT, "o_orderkey", "l_orderkey")
	q, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	ex, err := b.Exec(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	direct, err := cheetah.ExecDirect(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join of %d orders x %d lineitems: %d joined keys\n",
		ordersT.NumRows(), lineitemT.NumRows(), len(direct.Rows))
	fmt.Println()
	fmt.Print(ex.Explain())
	if !direct.Equal(ex.Result) {
		log.Fatal("planned join diverges from ground truth")
	}

	// Ablation grid: hand-configured variants through the low-level API.
	variants := []struct {
		label string
		cfg   cheetah.JoinConfig
	}{
		{"symmetric BF 4MB", cheetah.JoinConfig{FilterBits: 4 << 23, Hashes: 3, Seed: *seed}},
		{"symmetric RBF 4MB", cheetah.JoinConfig{FilterBits: 4 << 23, Hashes: 3, Seed: *seed, Kind: 1}},
		{"asymmetric BF 4MB", cheetah.JoinConfig{FilterBits: 4 << 23, Hashes: 3, Seed: *seed, Asymmetric: true}},
		{"symmetric BF 64KB", cheetah.JoinConfig{FilterBits: 64 << 13, Hashes: 3, Seed: *seed}},
	}
	fmt.Printf("\n%-20s %10s %10s %9s %7s\n", "variant", "sent", "forwarded", "unpruned", "exact")
	for _, v := range variants {
		j, err := cheetah.NewJoin(v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		run, err := cheetah.ExecCheetah(q, cheetah.CheetahOptions{Workers: 1, Pruner: j, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		exact := "yes"
		if !direct.Equal(run.Result) {
			exact = "NO"
		}
		fmt.Printf("%-20s %10d %10d %8.4f%% %7s\n",
			v.label, run.Traffic.EntriesSent, run.Traffic.Forwarded,
			100*run.UnprunedFraction(), exact)
	}
}

// tpcTables builds the Q3-shaped inputs via the public table API.
func tpcTables(orders int, seed uint64) (*cheetah.Table, *cheetah.Table, error) {
	ot, err := cheetah.NewTable(cheetah.Schema{
		{Name: "o_orderkey", Type: cheetah.Int64},
		{Name: "o_custkey", Type: cheetah.Int64},
	})
	if err != nil {
		return nil, nil, err
	}
	lt, err := cheetah.NewTable(cheetah.Schema{
		{Name: "l_orderkey", Type: cheetah.Int64},
		{Name: "l_extendedprice", Type: cheetah.Int64},
	})
	if err != nil {
		return nil, nil, err
	}
	s := seed
	next := func(n int64) int64 {
		s = s*6364136223846793005 + 1442695040888963407
		v := int64(s >> 33)
		return v%n + 1
	}
	for i := 0; i < orders; i++ {
		if err := ot.AppendInt64Row(int64(i+1), next(int64(orders/10+1))); err != nil {
			return nil, nil, err
		}
	}
	for i := 0; i < orders*4; i++ {
		if err := lt.AppendInt64Row(next(int64(orders)), next(100_000)); err != nil {
			return nil, nil, err
		}
	}
	return ot, lt, nil
}
