// Command stream demonstrates the streaming subsystem: a table as an
// append-able source and queries as continuous subscriptions whose
// standing results stay fresh as rows arrive — no history re-scan. A
// session opens its table as a stream, registers three continuous
// queries (a standing TOP N, a HAVING over running sums, and a sliding
// windowed GROUP BY SUM), then ingests the UserVisits workload in
// batches. Each committed batch runs through the held switch program
// incrementally — the standing program keeps its caches warm across
// deltas — and every standing result is always bit-identical to
// re-running the query from scratch on everything committed so far.
package main

import (
	"context"
	"fmt"
	"log"

	"cheetah"
	"cheetah/internal/workload"
)

func main() {
	ctx := context.Background()

	// The stream's source data, pre-generated so batches are just views.
	src, err := workload.UserVisits(workload.DefaultUserVisits(30_000, 1))
	if err != nil {
		log.Fatal(err)
	}

	// The session's table starts EMPTY: everything arrives as a stream.
	live, err := cheetah.NewTable(src.Schema())
	if err != nil {
		log.Fatal(err)
	}
	db, err := cheetah.Open(live, cheetah.SessionOptions{Workers: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	st, err := db.Stream(ctx, cheetah.StreamOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Three continuous queries, built with the usual fluent builder.
	topQ, err := db.Select().TopN("adRevenue", 5).Build()
	if err != nil {
		log.Fatal(err)
	}
	topN, err := st.Subscribe(ctx, topQ)
	if err != nil {
		log.Fatal(err)
	}
	heavyQ, err := db.Select().GroupBySum("languageCode", "duration").Having(100_000).Build()
	if err != nil {
		log.Fatal(err)
	}
	heavy, err := st.Subscribe(ctx, heavyQ)
	if err != nil {
		log.Fatal(err)
	}
	sumQ, err := db.Select().GroupBySum("countryCode", "adRevenue").Build()
	if err != nil {
		log.Fatal(err)
	}
	// A sliding window: the last 10k rows, advancing every 5k.
	windowed, err := st.SubscribeWindow(ctx, sumQ, 10_000, 5_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("continuous queries registered: topn plan=%q\n\n", topN.Plan().PrunerName)

	// Ingest in batches; after each flush the standing results moved.
	const batch = 6_000
	for lo := 0; lo < src.NumRows(); lo += batch {
		hi := lo + batch
		if hi > src.NumRows() {
			hi = src.NumRows()
		}
		view, err := src.View(lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		if err := st.AppendBatch(view); err != nil {
			log.Fatal(err)
		}
		if err := topN.Flush(ctx); err != nil {
			log.Fatal(err)
		}
		res, ver := topN.Results()
		top := "-"
		if len(res.Rows) > 0 {
			top = res.Rows[len(res.Rows)-1][0]
		}
		if err := heavy.Flush(ctx); err != nil {
			log.Fatal(err)
		}
		hres, _ := heavy.Results()
		if err := windowed.Flush(ctx); err != nil {
			log.Fatal(err)
		}
		wlo, whi := windowed.WindowBounds()
		fmt.Printf("after %6d rows: top adRevenue=%s  heavy languages=%d  window=[%d,%d)\n",
			ver, top, len(hres.Rows), wlo, whi)
	}

	// The standing program pruned across the whole stream.
	tr := topN.Traffic()
	fmt.Printf("\ntopn standing program: %d entries streamed, %d forwarded (%.1f%% pruned across all deltas)\n",
		tr.EntriesSent, tr.Forwarded, 100*(1-float64(tr.Forwarded)/float64(tr.EntriesSent)))

	// The invariant the whole subsystem is built on: the standing result
	// equals a from-scratch run on the full prefix.
	ex, err := db.Exec(ctx, topQ)
	if err != nil {
		log.Fatal(err)
	}
	got, _ := topN.Results()
	fmt.Printf("standing == from-scratch: %v\n", ex.Result.Equal(got))

	// Backpressure and occupancy gauges.
	var active int
	for _, c := range st.Stats() {
		active += c.Active
	}
	ist := st.Ingest().Stats()
	fmt.Printf("ingest: %d rows committed, %d standing queries, backlog %d, %d switch program(s) held\n",
		ist.Rows, ist.Subscriptions, ist.Backlog, active)
}
