// Command reliability runs a DISTINCT query end-to-end over the
// simulated lossy network — five CWorkers, the switch dataplane, and the
// CMaster speaking the §7.2 reliability protocol — at increasing loss
// rates, verifying the result stays exact while retransmissions grow.
// The session API routes to the cluster path via UseCluster.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"cheetah"
	"cheetah/internal/workload"
)

func main() {
	rows := flag.Int("rows", 3000, "UserVisits rows")
	seed := flag.Uint64("seed", 11, "generator seed")
	flag.Parse()

	uv, err := workload.UserVisits(workload.DefaultUserVisits(*rows, *seed))
	if err != nil {
		log.Fatal(err)
	}
	truth, err := cheetah.ExecDirect(&cheetah.Query{
		Kind: cheetah.KindDistinct, Table: uv, DistinctCols: []string{"userAgent"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth: %d distinct user agents over %d rows\n\n", len(truth.Rows), *rows)
	fmt.Printf("%-8s %8s %8s %10s %12s %8s\n",
		"loss", "sent", "pruned", "delivered", "retransmits", "exact")
	for _, loss := range []float64{0, 0.05, 0.15, 0.25} {
		db, err := cheetah.Open(uv, cheetah.SessionOptions{
			Workers:    5,
			Seed:       *seed,
			UseCluster: true,
			LossRate:   loss,
			RTO:        8 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		ex, err := db.Select().Distinct("userAgent").Exec(context.Background())
		if err != nil {
			log.Fatalf("loss %.2f: %v", loss, err)
		}
		rep := ex.ClusterReport
		exact := "yes"
		if !truth.Equal(ex.Result) {
			exact = "NO"
		}
		fmt.Printf("%-8.2f %8d %8d %10d %12d %8s\n",
			loss, rep.EntriesSent, rep.Pruned, rep.Delivered, rep.Retransmissions, exact)
	}
	fmt.Println("\nEvery packet is either pruned-and-ACKed by the switch or delivered")
	fmt.Println("to the master; duplicates from retransmission are harmless (§7.2).")
}
