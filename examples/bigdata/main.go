// Command bigdata runs the Big Data benchmark workloads (Appendix B) at
// a configurable scale through the session API and prints, per query,
// the planner's choice, the measured pruning rate and the modelled
// Spark-vs-Cheetah completion times — a miniature Figure 5.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"cheetah"
	"cheetah/internal/prune"
	"cheetah/internal/workload"
)

func main() {
	rows := flag.Int("rows", 200_000, "UserVisits rows to generate")
	workers := flag.Int("workers", 5, "CWorker count")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Parse()

	uv, err := workload.UserVisits(workload.DefaultUserVisits(*rows, *seed))
	if err != nil {
		log.Fatal(err)
	}
	rank := workload.Rankings(*rows/2+1000, *seed+1)
	if err := rank.Shuffle(*seed + 2); err != nil {
		log.Fatal(err)
	}

	opts := cheetah.SessionOptions{Workers: *workers, Seed: *seed}
	visits, err := cheetah.Open(uv, opts)
	if err != nil {
		log.Fatal(err)
	}
	rankings, err := cheetah.Open(rank, opts)
	if err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		label string
		b     *cheetah.QueryBuilder
	}{
		{"A: COUNT WHERE avgDuration<10", rankings.Select().
			Where("avgDuration", prune.OpLT, 10).Count()},
		{"B: SUM(adRevenue) GROUP BY lang", visits.Select().
			GroupBySum("languageCode", "adRevenue")},
		{"DISTINCT userAgent", visits.Select().Distinct("userAgent")},
		{"MAX(adRevenue) GROUP BY agent", visits.Select().
			GroupByMax("userAgent", "adRevenue")},
		{"TOP 250 BY adRevenue", visits.Select().TopN("adRevenue", 250)},
		{"SKYLINE OF pageRank,avgDuration", rankings.Select().
			Skyline("pageRank", "avgDuration")},
		{"HAVING SUM(adRevenue)>1M", visits.Select().
			GroupBySum("languageCode", "adRevenue").Having(1_000_000)},
	}

	ctx := context.Background()
	fmt.Printf("%-34s %-12s %10s %10s %8s %9s %9s\n",
		"query", "pruner", "sent", "forwarded", "pruned%", "spark", "cheetah")
	for _, spec := range queries {
		q, err := spec.b.Build()
		if err != nil {
			log.Fatal(err)
		}
		ex, err := spec.b.Exec(ctx)
		if err != nil {
			log.Fatal(err)
		}
		direct, err := cheetah.ExecDirect(q)
		if err != nil {
			log.Fatal(err)
		}
		if !direct.Equal(ex.Result) {
			log.Fatalf("%s: pruned result diverges from ground truth", spec.label)
		}
		fmt.Printf("%-34s %-12s %10d %10d %7.2f%% %8.3fs %8.3fs\n",
			spec.label, ex.Plan.PrunerName, ex.Traffic.EntriesSent, ex.Traffic.Forwarded,
			100*ex.Stats.PruneRate(), ex.SparkEstimate.Total(), ex.Estimate.Total())
	}
}
