// Command bigdata runs the Big Data benchmark workloads (Appendix B) at
// a configurable scale and prints, per query, the measured pruning rate
// and the modelled Spark-vs-Cheetah completion times — a miniature
// Figure 5.
package main

import (
	"flag"
	"fmt"
	"log"

	"cheetah"
	"cheetah/internal/boolexpr"
	"cheetah/internal/prune"
	"cheetah/internal/workload"
)

func main() {
	rows := flag.Int("rows", 200_000, "UserVisits rows to generate")
	workers := flag.Int("workers", 5, "CWorker count")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Parse()

	uv, err := workload.UserVisits(workload.DefaultUserVisits(*rows, *seed))
	if err != nil {
		log.Fatal(err)
	}
	rank := workload.Rankings(*rows/2+1000, *seed+1)
	if err := rank.Shuffle(*seed + 2); err != nil {
		log.Fatal(err)
	}
	cm := cheetah.DefaultCostModel()

	queries := []struct {
		label string
		q     *cheetah.Query
	}{
		{"A: COUNT WHERE avgDuration<10", &cheetah.Query{
			Kind: cheetah.KindFilter, Table: rank,
			Predicates: []cheetah.FilterPred{{Col: "avgDuration", Op: prune.OpLT, Const: 10}},
			Formula:    boolexpr.Leaf{V: 0}, CountOnly: true,
		}},
		{"B: SUM(adRevenue) GROUP BY lang", &cheetah.Query{
			Kind: cheetah.KindGroupBySum, Table: uv, KeyCol: "languageCode", AggCol: "adRevenue",
		}},
		{"DISTINCT userAgent", &cheetah.Query{
			Kind: cheetah.KindDistinct, Table: uv, DistinctCols: []string{"userAgent"},
		}},
		{"MAX(adRevenue) GROUP BY agent", &cheetah.Query{
			Kind: cheetah.KindGroupByMax, Table: uv, KeyCol: "userAgent", AggCol: "adRevenue",
		}},
		{"TOP 250 BY adRevenue", &cheetah.Query{
			Kind: cheetah.KindTopN, Table: uv, OrderCol: "adRevenue", N: 250,
		}},
		{"SKYLINE OF pageRank,avgDuration", &cheetah.Query{
			Kind: cheetah.KindSkyline, Table: rank, SkylineCols: []string{"pageRank", "avgDuration"},
		}},
		{"HAVING SUM(adRevenue)>1M", &cheetah.Query{
			Kind: cheetah.KindHaving, Table: uv, KeyCol: "languageCode", AggCol: "adRevenue",
			Threshold: 1_000_000,
		}},
	}

	fmt.Printf("%-34s %10s %10s %8s %9s %9s %9s\n",
		"query", "sent", "forwarded", "pruned%", "spark1st", "spark", "cheetah")
	for _, spec := range queries {
		direct, err := cheetah.ExecDirect(spec.q)
		if err != nil {
			log.Fatal(err)
		}
		run, err := cheetah.ExecCheetah(spec.q, cheetah.CheetahOptions{Workers: *workers, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		if !direct.Equal(run.Result) {
			log.Fatalf("%s: pruned result diverges from ground truth", spec.label)
		}
		perWorker := make([]int, *workers)
		for i := range perWorker {
			perWorker[i] = spec.q.Table.NumRows() / *workers
		}
		spark1 := cm.SparkTime(spec.q.Kind, perWorker, len(direct.Rows), true, 10).Total()
		spark := cm.SparkTime(spec.q.Kind, perWorker, len(direct.Rows), false, 10).Total()
		che := cm.CheetahTime(spec.q.Kind, run.Traffic, 10).Total()
		fmt.Printf("%-34s %10d %10d %7.2f%% %8.3fs %8.3fs %8.3fs\n",
			spec.label, run.Traffic.EntriesSent, run.Traffic.Forwarded,
			100*run.Stats.PruneRate(), spark1, spark, che)
	}
}
