// Command multiquery demonstrates §5/§6: packing several query programs
// onto one switch pipeline concurrently. The first half does it by hand
// — each program comes out of the session planner (which sizes it to
// fit the model); the pipeline's admission control packs them onto
// shared stages and the example prints the occupancy map. The second
// half lets the serving layer do the same for real executions: four
// goroutine clients Submit through one db.Serve handle and the switch
// multiplexes their traffic by QueryID.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"cheetah"
	"cheetah/internal/prune"
	"cheetah/internal/workload"
)

func main() {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(10_000, 1))
	if err != nil {
		log.Fatal(err)
	}
	db, err := cheetah.Open(uv, cheetah.SessionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	builders := []*cheetah.QueryBuilder{
		db.Select().Where("adRevenue", prune.OpGT, 500_000),
		db.Select().Distinct("userAgent"),
		db.Select().TopN("adRevenue", 250),
		db.Select().GroupByMax("userAgent", "adRevenue"),
	}

	pl, err := cheetah.NewPipeline(cheetah.Tofino())
	if err != nil {
		log.Fatal(err)
	}
	var pruners []cheetah.Pruner
	for i, b := range builders {
		plan, err := b.Plan()
		if err != nil {
			log.Fatal(err)
		}
		p, err := plan.NewPruner()
		if err != nil {
			log.Fatal(err)
		}
		flow := uint32(i + 1)
		if err := pl.Install(flow, p); err != nil {
			log.Fatalf("install flow %d (%s): %v", flow, p.Name(), err)
		}
		fmt.Printf("installed %-14s on flow %d: %s\n", p.Name(), flow, p.Profile())
		pruners = append(pruners, p)
	}

	// Traffic for all four queries interleaves through one pipeline.
	for i := uint64(0); i < 10_000; i++ {
		pl.Process(1, []uint64{i % 1_000_000})
		pl.Process(2, []uint64{i % 500})
		pl.Process(3, []uint64{i * 2654435761})
		pl.Process(4, []uint64{i % 100, i % 999})
	}
	fmt.Println()
	fmt.Print(pl.String())
	u := pl.Utilization()
	fmt.Printf("\nutilization: %d/%d stages, %d/%d ALUs, %d/%d KB SRAM\n",
		u.StagesUsed, u.StagesTotal, u.ALUsUsed, u.ALUsTotal,
		u.SRAMBitsUsed/8192, u.SRAMBitsCap/8192)
	for i, p := range pruners {
		st := p.Stats()
		fmt.Printf("flow %d %-14s processed=%d pruned=%d (%.1f%%)\n",
			i+1, p.Name(), st.Processed, st.Pruned, 100*st.PruneRate())
	}

	// The serving layer automates all of the above for live traffic:
	// db.Serve owns the shared pipeline, and concurrent Submit calls
	// are admitted (FIFO when full), multiplexed by QueryID, executed
	// end-to-end and uninstalled on completion.
	fmt.Println("\n--- concurrent clients via db.Serve ---")
	ctx := context.Background()
	sv, err := db.Serve(ctx, cheetah.ServeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer sv.Close()
	var wg sync.WaitGroup
	results := make([]string, len(builders))
	for i, b := range builders {
		q, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(i int, q *cheetah.Query) {
			defer wg.Done()
			ex, err := sv.Submit(ctx, q)
			if err != nil {
				results[i] = fmt.Sprintf("client %d: %v", i, err)
				return
			}
			results[i] = fmt.Sprintf("client %d: %-12s query %d → %5d rows, %5.1f%% pruned",
				i, ex.Plan.Query.Kind, ex.QueryID, len(ex.Result.Rows), 100*ex.Stats.PruneRate())
		}(i, q)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(r)
	}
	fmt.Printf("serving stats: %+v\n", sv.Stats())
}
