// Command multiquery demonstrates §6: packing several query programs
// onto one switch pipeline concurrently. Each program comes out of the
// session planner (which sizes it to fit the model); the pipeline's
// admission control then packs them onto shared stages and the example
// prints the occupancy map.
package main

import (
	"fmt"
	"log"

	"cheetah"
	"cheetah/internal/prune"
	"cheetah/internal/workload"
)

func main() {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(10_000, 1))
	if err != nil {
		log.Fatal(err)
	}
	db, err := cheetah.Open(uv, cheetah.SessionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	builders := []*cheetah.QueryBuilder{
		db.Select().Where("adRevenue", prune.OpGT, 500_000),
		db.Select().Distinct("userAgent"),
		db.Select().TopN("adRevenue", 250),
		db.Select().GroupByMax("userAgent", "adRevenue"),
	}

	pl, err := cheetah.NewPipeline(cheetah.Tofino())
	if err != nil {
		log.Fatal(err)
	}
	var pruners []cheetah.Pruner
	for i, b := range builders {
		plan, err := b.Plan()
		if err != nil {
			log.Fatal(err)
		}
		p, err := plan.NewPruner()
		if err != nil {
			log.Fatal(err)
		}
		flow := uint32(i + 1)
		if err := pl.Install(flow, p); err != nil {
			log.Fatalf("install flow %d (%s): %v", flow, p.Name(), err)
		}
		fmt.Printf("installed %-14s on flow %d: %s\n", p.Name(), flow, p.Profile())
		pruners = append(pruners, p)
	}

	// Traffic for all four queries interleaves through one pipeline.
	for i := uint64(0); i < 10_000; i++ {
		pl.Process(1, []uint64{i % 1_000_000})
		pl.Process(2, []uint64{i % 500})
		pl.Process(3, []uint64{i * 2654435761})
		pl.Process(4, []uint64{i % 100, i % 999})
	}
	fmt.Println()
	fmt.Print(pl.String())
	u := pl.Utilization()
	fmt.Printf("\nutilization: %d/%d stages, %d/%d ALUs, %d/%d KB SRAM\n",
		u.StagesUsed, u.StagesTotal, u.ALUsUsed, u.ALUsTotal,
		u.SRAMBitsUsed/8192, u.SRAMBitsCap/8192)
	for i, p := range pruners {
		st := p.Stats()
		fmt.Printf("flow %d %-14s processed=%d pruned=%d (%.1f%%)\n",
			i+1, p.Name(), st.Processed, st.Pruned, 100*st.PruneRate())
	}
}
