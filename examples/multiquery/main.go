// Command multiquery demonstrates §6: packing several query programs
// onto one switch pipeline concurrently — a filter, a DISTINCT, a TOP N
// and a group-by share stages without reprogramming — and printing the
// pipeline occupancy map.
package main

import (
	"fmt"
	"log"

	"cheetah"
	"cheetah/internal/boolexpr"
	"cheetah/internal/prune"
)

func main() {
	pl, err := cheetah.NewPipeline(cheetah.Tofino())
	if err != nil {
		log.Fatal(err)
	}

	filter, err := cheetah.NewDistinct(cheetah.DistinctConfig{Rows: 4096, Cols: 2, Policy: cheetah.LRU})
	if err != nil {
		log.Fatal(err)
	}
	_ = filter
	programs := []struct {
		flow uint32
		p    cheetah.Pruner
	}{}
	mk := func(flow uint32, p cheetah.Pruner, err error) {
		if err != nil {
			log.Fatal(err)
		}
		programs = append(programs, struct {
			flow uint32
			p    cheetah.Pruner
		}{flow, p})
	}
	f, err := prune.NewFilter(prune.FilterConfig{
		Predicates: []prune.Predicate{{ValIdx: 0, Op: prune.OpGT, Const: 100}},
		Formula:    boolexpr.Leaf{V: 0},
	})
	mk(1, f, err)
	d, err := cheetah.NewDistinct(cheetah.DistinctConfig{Rows: 4096, Cols: 2, Policy: cheetah.LRU})
	mk(2, d, err)
	tn, err := cheetah.NewRandTopN(cheetah.RandTopNConfig{N: 250, Rows: 4096, Cols: 4, Seed: 1})
	mk(3, tn, err)
	gb, err := cheetah.NewGroupBy(cheetah.GroupByConfig{Rows: 4096, Cols: 8, Seed: 2})
	mk(4, gb, err)

	for _, pr := range programs {
		if err := pl.Install(pr.flow, pr.p); err != nil {
			log.Fatalf("install flow %d (%s): %v", pr.flow, pr.p.Name(), err)
		}
		fmt.Printf("installed %-14s on flow %d: %s\n", pr.p.Name(), pr.flow, pr.p.Profile())
	}

	// Traffic for all four queries interleaves through one pipeline.
	for i := uint64(0); i < 10_000; i++ {
		pl.Process(1, []uint64{i % 200})          // filter
		pl.Process(2, []uint64{i % 500})          // distinct
		pl.Process(3, []uint64{i * 2654435761})   // top-n
		pl.Process(4, []uint64{i % 100, i % 999}) // group-by
	}
	fmt.Println()
	fmt.Print(pl.String())
	u := pl.Utilization()
	fmt.Printf("\nutilization: %d/%d stages, %d/%d ALUs, %d/%d KB SRAM\n",
		u.StagesUsed, u.StagesTotal, u.ALUsUsed, u.ALUsTotal,
		u.SRAMBitsUsed/8192, u.SRAMBitsCap/8192)
	for _, pr := range programs {
		st := pr.p.Stats()
		fmt.Printf("flow %d %-14s processed=%d pruned=%d (%.1f%%)\n",
			pr.flow, pr.p.Name(), st.Processed, st.Pruned, 100*st.PruneRate())
	}
}
