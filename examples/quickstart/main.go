// Command quickstart reproduces the paper's running example (Table 1)
// through the session API: open each table, build queries fluently, and
// let the planner pick and size the pruning algorithm. Every query is
// checked against the exact direct execution.
package main

import (
	"context"
	"fmt"
	"log"

	"cheetah"
	"cheetah/internal/prune"
)

func main() {
	products, err := cheetah.NewTable(cheetah.Schema{
		{Name: "name", Type: cheetah.String},
		{Name: "seller", Type: cheetah.String},
		{Name: "price", Type: cheetah.Int64},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []struct {
		name, seller string
		price        int64
	}{
		{"Burger", "McCheetah", 4},
		{"Pizza", "Papizza", 7},
		{"Fries", "McCheetah", 2},
		{"Jello", "JellyFish", 5},
	} {
		if err := products.AppendRow(r.name, r.seller, r.price); err != nil {
			log.Fatal(err)
		}
	}

	ratings, err := cheetah.NewTable(cheetah.Schema{
		{Name: "name", Type: cheetah.String},
		{Name: "taste", Type: cheetah.Int64},
		{Name: "texture", Type: cheetah.Int64},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []struct {
		name           string
		taste, texture int64
	}{
		{"Pizza", 7, 5}, {"Cheetos", 8, 6}, {"Jello", 9, 4}, {"Burger", 5, 7}, {"Fries", 3, 3},
	} {
		if err := ratings.AppendRow(r.name, r.taste, r.texture); err != nil {
			log.Fatal(err)
		}
	}

	opts := cheetah.SessionOptions{Workers: 2, Seed: 1}
	prod, err := cheetah.Open(products, opts)
	if err != nil {
		log.Fatal(err)
	}
	rate, err := cheetah.Open(ratings, opts)
	if err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		title string
		b     *cheetah.QueryBuilder
	}{
		{"SELECT DISTINCT seller FROM Products", prod.Select().Distinct("seller")},
		{"SELECT TOP 3 ... ORDER BY taste", rate.Select().TopN("taste", 3)},
		{"SELECT * WHERE price > 3 AND name LIKE '_i%'", prod.Select().
			Where("price", prune.OpGT, 3).WhereLike("name", "_i%")},
		{"GROUP BY seller HAVING SUM(price) > 5", prod.Select().
			GroupBySum("seller", "price").Having(5)},
		{"Products JOIN Ratings ON name", prod.Select().Join(ratings, "name", "name")},
		{"SKYLINE OF taste, texture", rate.Select().Skyline("taste", "texture")},
	}

	ctx := context.Background()
	for _, spec := range queries {
		q, err := spec.b.Build()
		if err != nil {
			log.Fatal(err)
		}
		ex, err := spec.b.Exec(ctx)
		if err != nil {
			log.Fatal(err)
		}
		direct, err := cheetah.ExecDirect(q)
		if err != nil {
			log.Fatal(err)
		}
		match := "MATCH"
		if !direct.Equal(ex.Result) {
			match = "MISMATCH"
		}
		fmt.Printf("== %s [%s]\n", spec.title, match)
		fmt.Print(indent(ex.Explain()))
		fmt.Print(indent(ex.Result.String()))
	}
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "   " + s[start:i+1]
			start = i + 1
		}
	}
	return out
}
