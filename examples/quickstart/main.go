// Command quickstart reproduces the paper's running example (Table 1):
// it builds the Products and Ratings tables, runs DISTINCT, TOP N,
// HAVING, JOIN and SKYLINE through both execution paths, and shows that
// the pruned path returns exactly the direct result while the switch
// drops a measurable share of the traffic.
package main

import (
	"fmt"
	"log"

	"cheetah"
)

func main() {
	products, err := cheetah.NewTable(cheetah.Schema{
		{Name: "name", Type: cheetah.String},
		{Name: "seller", Type: cheetah.String},
		{Name: "price", Type: cheetah.Int64},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []struct {
		name, seller string
		price        int64
	}{
		{"Burger", "McCheetah", 4},
		{"Pizza", "Papizza", 7},
		{"Fries", "McCheetah", 2},
		{"Jello", "JellyFish", 5},
	} {
		if err := products.AppendRow(r.name, r.seller, r.price); err != nil {
			log.Fatal(err)
		}
	}

	ratings, err := cheetah.NewTable(cheetah.Schema{
		{Name: "name", Type: cheetah.String},
		{Name: "taste", Type: cheetah.Int64},
		{Name: "texture", Type: cheetah.Int64},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []struct {
		name           string
		taste, texture int64
	}{
		{"Pizza", 7, 5}, {"Cheetos", 8, 6}, {"Jello", 9, 4}, {"Burger", 5, 7}, {"Fries", 3, 3},
	} {
		if err := ratings.AppendRow(r.name, r.taste, r.texture); err != nil {
			log.Fatal(err)
		}
	}

	queries := []struct {
		title string
		q     *cheetah.Query
	}{
		{"SELECT DISTINCT seller FROM Products", &cheetah.Query{
			Kind: cheetah.KindDistinct, Table: products, DistinctCols: []string{"seller"},
		}},
		{"SELECT TOP 3 ... ORDER BY taste", &cheetah.Query{
			Kind: cheetah.KindTopN, Table: ratings, OrderCol: "taste", N: 3,
		}},
		{"GROUP BY seller HAVING SUM(price) > 5", &cheetah.Query{
			Kind: cheetah.KindHaving, Table: products, KeyCol: "seller", AggCol: "price", Threshold: 5,
		}},
		{"Products JOIN Ratings ON name", &cheetah.Query{
			Kind: cheetah.KindJoin, Table: products, Right: ratings,
			LeftKey: "name", RightKey: "name",
		}},
		{"SKYLINE OF taste, texture", &cheetah.Query{
			Kind: cheetah.KindSkyline, Table: ratings, SkylineCols: []string{"taste", "texture"},
		}},
	}

	for _, spec := range queries {
		direct, err := cheetah.ExecDirect(spec.q)
		if err != nil {
			log.Fatal(err)
		}
		run, err := cheetah.ExecCheetah(spec.q, cheetah.CheetahOptions{Workers: 2, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		match := "MATCH"
		if !direct.Equal(run.Result) {
			match = "MISMATCH"
		}
		fmt.Printf("== %s\n", spec.title)
		fmt.Printf("   pruner=%s sent=%d forwarded=%d pruned=%d result=%s\n",
			run.PrunerName, run.Traffic.EntriesSent, run.Traffic.Forwarded,
			run.Stats.Pruned, match)
		fmt.Print(indent(direct.String()))
	}
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "   " + s[start:i+1]
			start = i + 1
		}
	}
	return out
}
