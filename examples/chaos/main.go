// Command chaos demonstrates the fabric's fault tolerance: switches
// are killed, restored, and hot-added while served queries and a
// continuous query keep running — and every answer stays bit-identical
// to direct execution, because the servers are the exactness backstop
// (§7.2 of the paper: a dead switch prunes nothing, it never lies).
//
// Three failure modes are shown:
//
//  1. A switch dies in the middle of a served query's stream. The
//     attempt is discarded (register state absorbed by the dead switch
//     is unrecoverable) and the query fails over to a survivor with a
//     fresh program.
//  2. The whole fabric dies. Submissions degrade to exact direct
//     execution until a hot-added switch brings pruning back.
//  3. The switch hosting a continuous query's standing program dies
//     between deltas. The subscription re-places onto the least-loaded
//     survivor — warm-rebuilt from the standing result for the
//     monotone kinds — and its standing result never diverges.
package main

import (
	"context"
	"fmt"
	"log"

	"cheetah"
	"cheetah/internal/workload"
)

func main() {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(30_000, 1))
	if err != nil {
		log.Fatal(err)
	}
	want, err := cheetah.ExecDirect(&cheetah.Query{
		Kind: cheetah.KindDistinct, Table: uv, DistinctCols: []string{"userAgent"},
	})
	if err != nil {
		log.Fatal(err)
	}

	db, err := cheetah.Open(uv, cheetah.SessionOptions{Switches: 2, Workers: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sv, err := db.Serve(context.Background(), cheetah.ServeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer sv.Close()
	fab := sv.Fabric()
	ctx := context.Background()
	query := func() *cheetah.Query {
		return &cheetah.Query{Kind: cheetah.KindDistinct, Table: uv, DistinctCols: []string{"userAgent"}}
	}

	// 1. Kill the placed switch in the middle of the query's stream: a
	// fault injector takes switch 0's pipeline down at its next batch,
	// so the query's first attempt dies mid-stream and fails over to
	// switch 1 with a fresh program.
	fmt.Println("== mid-query switch death → failover ==")
	fab.Server(0).Pipeline().SetFaultInjector(func(uint32, int) bool { return true })
	ex, err := sv.SubmitQoS(ctx, query(), cheetah.QoS{Tenant: "acme", Priority: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact=%v  failed over %d time(s), finished on switch %d\n",
		want.Equal(ex.Result), ex.FailedOver, ex.Switch)

	// 2. Kill every switch: §7.2 backstop — exact direct execution.
	fmt.Println("\n== whole fabric dead → exact direct backstop ==")
	for i := 0; i < fab.Size(); i++ {
		fab.Fail(i)
	}
	ex, err = sv.Submit(ctx, query())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact=%v  mode=%v (%s)\n", want.Equal(ex.Result), ex.Plan.Mode, ex.Plan.Reason)

	// Hot-add a switch: pruning comes back without touching the dead ones.
	idx, err := fab.Add()
	if err != nil {
		log.Fatal(err)
	}
	ex, err = sv.Submit(ctx, query())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after Add(): exact=%v  mode=%v on switch %d (added switch %d)\n",
		want.Equal(ex.Result), ex.Plan.Mode, ex.Switch, idx)
	for i := 0; i < fab.Size(); i++ {
		if fab.Failed(i) {
			if err := fab.Restore(i); err != nil {
				log.Fatal(err)
			}
		}
	}
	st := sv.Stats()
	fmt.Printf("fabric counters: admitted=%d failed_over=%d revoked=%d shed=%d\n",
		st.Admitted, st.FailedOver, st.Revoked, st.Shed)

	// 3. A continuous query survives its switch dying: the standing
	// program re-places onto a survivor between deltas.
	fmt.Println("\n== continuous query re-placement ==")
	target, err := cheetah.NewTable(uv.Schema())
	if err != nil {
		log.Fatal(err)
	}
	sdb, err := cheetah.Open(target, cheetah.SessionOptions{Switches: 1, Workers: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	stream, err := sdb.Stream(ctx, cheetah.StreamOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Close()
	sub, err := stream.Subscribe(ctx, &cheetah.Query{
		Kind: cheetah.KindDistinct, Table: target, DistinctCols: []string{"userAgent"},
	})
	if err != nil {
		log.Fatal(err)
	}
	half := uv.NumRows() / 2
	first, err := uv.View(0, half)
	if err != nil {
		log.Fatal(err)
	}
	if err := stream.AppendBatch(first); err != nil {
		log.Fatal(err)
	}
	if err := sub.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standing program on switch %d; killing it and hot-adding a spare\n", sub.Switch())
	stream.Fabric().Fail(sub.Switch())
	if _, err := stream.Fabric().Add(); err != nil {
		log.Fatal(err)
	}
	rest, err := uv.View(half, uv.NumRows())
	if err != nil {
		log.Fatal(err)
	}
	if err := stream.AppendBatch(rest); err != nil {
		log.Fatal(err)
	}
	if err := sub.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	got, _ := sub.Results()
	fmt.Printf("re-placed %d time(s), now on switch %d, standing result exact=%v\n",
		sub.Replaced(), sub.Switch(), want.Equal(got))
}
