// Command fabric demonstrates the multi-switch execution fabric: the
// paper's deployment shape, where each rack's ToR switch prunes its own
// workers' streams. A 4-switch session shards every query across the
// fabric (scatter/gather): the table splits per switch — contiguously
// for most kinds, hash-on-key for JOIN so matching keys co-locate —
// each shard streams through its own switch program concurrently, and
// the master runs the two-level merge (shard-local partials, then a
// global combine) that reproduces exact single-node results.
//
// The example also shows the storage half directly: hash and range
// sharding of a table, and how shard sizes balance.
package main

import (
	"context"
	"fmt"
	"log"

	"cheetah"
	"cheetah/internal/prune"
	"cheetah/internal/workload"
)

func main() {
	uv, err := workload.UserVisits(workload.DefaultUserVisits(40_000, 1))
	if err != nil {
		log.Fatal(err)
	}
	rk := workload.Rankings(20_000, 2)

	// Storage half: content-based sharding beyond contiguous Partition.
	fmt.Println("== table sharding ==")
	hashShards, err := uv.ShardBy("countryCode", 4)
	if err != nil {
		log.Fatal(err)
	}
	rangeShards, err := uv.ShardByRange("adRevenue", 4)
	if err != nil {
		log.Fatal(err)
	}
	for i := range hashShards {
		fmt.Printf("shard %d: hash(countryCode)=%6d rows   range(adRevenue)=%6d rows\n",
			i, hashShards[i].NumRows(), rangeShards[i].NumRows())
	}

	// Execution half: a 4-switch fabric session. Every Exec scatters the
	// query across the switches and gathers exactly.
	db, err := cheetah.Open(uv, cheetah.SessionOptions{Switches: 4, Workers: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== scatter/gather: TOP 100 adRevenue across 4 switches ==")
	ex, err := db.Select().TopN("adRevenue", 100).Exec(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ex.Explain())

	fmt.Println("\n== scatter/gather: JOIN (hash-on-key co-location) ==")
	ex, err = db.Select().Join(rk, "destURL", "pageURL").Exec(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ex.Explain())

	// The merged results are exact: compare against single-node truth.
	q, err := db.Select().
		Where("adRevenue", cheetah.OpGT, 9_000).
		Where("duration", prune.OpLE, 300).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	want, err := cheetah.ExecDirect(q)
	if err != nil {
		log.Fatal(err)
	}
	got, err := db.Exec(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== exactness ==\nfilter rows: direct=%d fabric=%d equal=%v\n",
		len(want.Rows), len(got.Result.Rows), want.Equal(got.Result))

	// Serving across the fabric: concurrent queries are placed whole on
	// the least-loaded switch instead of being sharded.
	sv, err := db.Serve(context.Background(), cheetah.ServeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer sv.Close()
	fmt.Printf("\n== serving placement across %d switches ==\n", sv.Switches())
	for _, b := range []*cheetah.QueryBuilder{
		db.Select().Distinct("userAgent"),
		db.Select().GroupByMax("countryCode", "adRevenue"),
		db.Select().TopN("duration", 50),
	} {
		q, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		ex, err := sv.Submit(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s → switch %d, queryid %d, %d rows\n",
			q.Kind, ex.Switch, ex.QueryID, len(ex.Result.Rows))
	}
	fmt.Printf("fabric admissions: %+v\n", sv.Stats())
}
