// Package cheetah is the public API of the Cheetah reproduction: switch
// pruning for database queries (Tirmazi, Ben Basat, Gao, Yu — SIGCOMM
// 2019).
//
// The front door is the session API: Open a table, build a query with
// the fluent builder, and Exec it — the planner picks the pruning
// algorithm, derives its §5 parameters, admission-checks the program
// against the switch model, and routes execution (falling back to exact
// direct execution, with an explanation, when the switch cannot host the
// query):
//
//	db, _ := cheetah.Open(visits, cheetah.SessionOptions{Workers: 5})
//	ex, _ := db.Select().TopN("adRevenue", 250).Exec(ctx)
//	fmt.Println(ex.Explain())
//
// Underneath, the package re-exports the composable substrate for
// callers that need manual control:
//
//   - Queries and tables: declarative query specs over columnar tables.
//   - Execution: ExecDirect (exact single-node ground truth), ExecCheetah
//     (workers → switch pruner → master completion), and RunCluster (the
//     same over a simulated lossy network with the §7.2 reliability
//     protocol).
//   - Pruners: every §4/§5 algorithm, constructible with paper or custom
//     parameters, each declaring its Table 2 resource profile.
//   - The switch model: PISA resource admission and multi-query packing.
//   - Storage-side data skipping: block zone maps + Bloom metadata that
//     eliminate whole blocks before they are read, composing with the
//     switch's in-flight pruning (see SkipStats).
//
// See examples/quickstart for a five-minute tour and DESIGN.md for the
// system inventory.
package cheetah

import (
	"cheetah/internal/cache"
	"cheetah/internal/cluster"
	"cheetah/internal/connector"
	"cheetah/internal/engine"
	"cheetah/internal/fabric"
	"cheetah/internal/netserve"
	"cheetah/internal/plan"
	"cheetah/internal/prune"
	"cheetah/internal/serve"
	"cheetah/internal/stream"
	"cheetah/internal/switchsim"
	"cheetah/internal/table"
	"cheetah/internal/wire"
)

// The session API: planner-backed query execution.
type (
	// DB is an open session over one table: fluent query building,
	// automatic pruner planning, and one Exec entrypoint.
	DB = plan.Session
	// SessionOptions configures a session (switch model, workers, δ,
	// cluster transport, cost model).
	SessionOptions = plan.Options
	// QueryBuilder is the fluent, validating query builder returned by
	// DB.Select.
	QueryBuilder = plan.Builder
	// Plan is the planner's decision: mode, pruner, profile, reason.
	Plan = plan.Plan
	// PlanMode discriminates direct / cheetah / cluster execution.
	PlanMode = plan.Mode
	// Execution is the unified execution report (result + traffic +
	// plan + cost estimates) with an Explain rendering.
	Execution = plan.Execution
)

// Plan modes.
const (
	// ModeDirect is exact single-node execution (the planner's fallback).
	ModeDirect = plan.ModeDirect
	// ModeCheetah is the in-process batched pruned path.
	ModeCheetah = plan.ModeCheetah
	// ModeCluster is the pruned path over the simulated lossy network.
	ModeCluster = plan.ModeCluster
)

// Open opens a planning session over t. It is the recommended entrypoint
// for running queries; the free functions below remain for manual
// control of pruner construction and execution paths.
func Open(t *Table, opts SessionOptions) (*DB, error) { return plan.Open(t, opts) }

// The concurrent serving layer (§5's multi-query switch sharing) and
// the multi-switch fabric: with SessionOptions.Switches > 1, Exec
// shards each query across N pipelines (scatter/gather with an exact
// two-level merge — see Execution.PerSwitch) and Serve places whole
// concurrent queries on the least-loaded switch.
type (
	// Serving is a live multi-query serving handle over the session's
	// switch fabric, opened with DB.Serve. Any number of goroutines may
	// call Submit concurrently; each query is placed on the least-loaded
	// switch, admitted into its shared pipeline under its own QueryID,
	// waits FIFO when every switch is full, and falls back to exact
	// direct execution when it can never fit (or the queue limit sheds
	// it).
	Serving = plan.Serving
	// SwitchReport is one fabric switch's share of a scatter/gather
	// execution (per-shard traffic + pipeline occupancy).
	SwitchReport = plan.SwitchReport
	// ServeOptions configures a serving handle (queue limit).
	ServeOptions = plan.ServeOptions
	// ServeCounters are the serving layer's cumulative admission
	// statistics (admitted, waited, oversized, shed, revoked, failed-
	// over, re-placed, deadline-missed, active, queued).
	ServeCounters = serve.Counters
	// QoS carries one submission's quality-of-service terms: tenant
	// identity (per-tenant quotas), admission priority, and an optional
	// queueing deadline past which the query is shed. Zero value =
	// best-effort. Pass to Serving.SubmitQoS.
	QoS = serve.QoS
	// Fabric is a serving or streaming handle's switch fleet, reached
	// via Serving.Fabric / Streaming.Fabric: failure lifecycle
	// (Fail/Restore/Add), per-switch servers, counters, and occupancy.
	Fabric = fabric.Fabric
	// Utilization summarizes switch pipeline occupancy (also surfaced
	// per query in Execution.PipelineUtil).
	Utilization = switchsim.Utilization
)

// The streaming subsystem: tables as append-able sources, queries as
// continuous subscriptions executed incrementally over live appends.
// Open a handle with DB.Stream, append rows through it, and Subscribe
// planner-built queries — each delta batch runs through the batched
// engine (scattered across the fabric when Switches > 1) and merges
// into a standing result that always equals a from-scratch run over
// the full committed prefix. SubscribeWindow adds tumbling and sliding
// row-count windows for the aggregate kinds.
type (
	// Streaming is a live streaming handle over the session's table,
	// opened with DB.Stream: an append log plus a switch fabric hosting
	// the standing programs of its continuous queries.
	Streaming = plan.Streaming
	// StreamOptions configures a streaming handle (backlog bound,
	// block-vs-shed backpressure, placement queue limit).
	StreamOptions = plan.StreamOptions
	// StreamSubscription is one registered continuous query: poll
	// Results or receive Updates; Close releases its standing program.
	StreamSubscription = plan.Subscription
	// StreamUpdate is one subscription progress notification.
	StreamUpdate = stream.Update
	// IngestStats are the append log's point-in-time gauges.
	IngestStats = stream.Stats
)

// Streaming backpressure errors.
var (
	// ErrStreamBacklog marks an append shed by the backlog bound.
	ErrStreamBacklog = stream.ErrBacklog
	// ErrStreamClosed marks operations on a closed streaming handle.
	ErrStreamClosed = stream.ErrClosed
)

// The network front door: a TCP server speaking the internal/wire
// frame protocol that multiplexes many remote clients onto one shared
// fabric (cmd/cheetahd is the standalone daemon), and the client that
// dials it. Queries answered over the wire are bit-identical to
// in-process ExecDirect; SIGTERM-style drains hand every outstanding
// client a result, a retryable error, or a Goodbye. See
// examples/server for the in-process tour.
type (
	// Server serves a fabric over TCP; open with ServeNet/ListenNet,
	// stop with Shutdown (graceful drain) or Close.
	Server = netserve.Server
	// ServerOptions configures the served catalog (tables, streamed
	// primary) and the fabric behind it.
	ServerOptions = netserve.Options
	// NetClient is a wire-protocol client connection: one-shot queries,
	// appends, pings, and credit-windowed subscriptions.
	NetClient = netserve.Client
	// NetQueryOptions carries one remote query's QoS terms.
	NetQueryOptions = netserve.QueryOptions
	// NetSubscribeOptions configures a remote subscription (window,
	// slide, initial credits).
	NetSubscribeOptions = netserve.SubscribeOptions
	// NetSub is a remote standing subscription: coalesced Updates plus
	// a Credit window.
	NetSub = netserve.ClientSub
	// ServerError is a server-reported wire error; Retryable reports
	// whether reissuing (elsewhere, or after the drain) can succeed.
	ServerError = netserve.ServerError
	// WireSpec is a table-name-detached query for the wire protocol;
	// the server binds it against its served catalog. Build one from an
	// engine query with WireSpecOf.
	WireSpec = wire.QuerySpec
	// WireUpdate is one pushed subscription refresh: the new standing
	// result plus its committed stream version.
	WireUpdate = wire.UpdateMsg
	// WireResult is one query answer over the wire: rows plus the
	// server-side wall clock and compact stage-trace summary
	// (NetClient.Query returns it; render the summary with
	// FormatNetTrace).
	WireResult = wire.ResultMsg
)

// WireSpecOf derives a wire query spec from a locally-built query, with
// the served names standing in for its table pointers.
var WireSpecOf = wire.SpecOf

// FormatNetTrace renders a wire result's server-side stage summary —
// one line per lifecycle stage with duration and entry counts. Empty
// when the server disabled tracing.
var FormatNetTrace = netserve.FormatTrace

// ListenNet starts a wire-protocol server on addr ("host:0" picks a
// free port).
func ListenNet(addr string, opts ServerOptions) (*Server, error) {
	return netserve.Listen(addr, opts)
}

// DialNet connects to a wire-protocol server as the given tenant.
func DialNet(addr, tenant string) (*NetClient, error) {
	return netserve.Dial(addr, tenant)
}

// Connectors: pluggable Source→Ingestor feeds and Subscription→Sink
// fan-outs, wired by spec strings ("gen:rows=100000,batch=256",
// "log:path=-") through a registry — how cheetahd builds streaming
// topology from flags.
type (
	// ConnectorSource produces row batches for a streaming feed.
	ConnectorSource = connector.Source
	// ConnectorSink consumes standing-result refreshes from a pipe.
	ConnectorSink = connector.Sink
	// ConnectorRegistry maps spec names to source/sink builders.
	ConnectorRegistry = connector.Registry
	// ConnectorRuntime owns running feeds and pipes over one Streaming
	// handle; Close stops them all.
	ConnectorRuntime = connector.Runtime
)

// DefaultConnectors returns the built-in connector registry (gen and
// csv sources; log and null sinks).
func DefaultConnectors() *connector.Registry { return connector.DefaultRegistry() }

// NewConnectorRuntime creates a connector runtime over a streaming
// handle.
func NewConnectorRuntime(st *Streaming) (*ConnectorRuntime, error) {
	return connector.NewRuntime(st)
}

// Tables and schemas.
type (
	// Table is a columnar in-memory table.
	Table = table.Table
	// Schema describes a table's columns.
	Schema = table.Schema
	// ColumnDef is one schema column.
	ColumnDef = table.ColumnDef
)

// Column types.
const (
	Int64  = table.Int64
	String = table.String
)

// NewTable creates an empty table with the given schema.
func NewTable(s Schema) (*Table, error) { return table.New(s) }

// Storage-side data skipping: sessions build a block skip index (per-
// column zone maps + Bloom filters over fixed-size row blocks) on their
// table at Open, and WHERE/TOP N/JOIN plans skip blocks the metadata
// proves irrelevant before any row is read or encoded — bit-identical
// results, reported via Execution.SkipStats and the Explain output.
// Opt out with SessionOptions.DisableSkipping; tune the block size with
// SessionOptions.SkipBlockRows.
type (
	// SkipIndex is a table's block skip metadata, built with
	// Table.BuildSkipIndex and extended by Table.RefreshSkipIndex.
	SkipIndex = table.SkipIndex
	// SkipStats counts blocks proven irrelevant (and their rows) during
	// one execution; embedded in Execution and cumulative per streaming
	// subscription via StreamSubscription.Skipped.
	SkipStats = engine.SkipStats
)

// DefaultSkipBlockRows is the skip-index block size used when
// SessionOptions.SkipBlockRows is unset.
const DefaultSkipBlockRows = table.DefaultBlockRows

// Queries and execution.
type (
	// Query is a declarative query spec.
	Query = engine.Query
	// QueryKind discriminates query shapes.
	QueryKind = engine.QueryKind
	// FilterPred is a WHERE predicate.
	FilterPred = engine.FilterPred
	// Result is a canonical, sorted query result.
	Result = engine.Result
	// CheetahOptions configures the pruned execution path.
	CheetahOptions = engine.CheetahOptions
	// CheetahRun reports a pruned execution's result and traffic.
	CheetahRun = engine.CheetahRun
	// ShardedOptions configures the multi-switch scatter/gather path.
	ShardedOptions = engine.ShardedOptions
	// ShardedRun reports a scatter/gather execution (aggregate plus
	// per-switch traffic).
	ShardedRun = engine.ShardedRun
	// ShardStrategy selects how a sharded execution splits the table.
	ShardStrategy = engine.ShardStrategy
	// CostModel converts traffic into completion-time estimates.
	CostModel = engine.CostModel
)

// Shard strategies for ExecSharded (the session API picks automatically).
const (
	ShardAuto       = engine.ShardAuto
	ShardContiguous = engine.ShardContiguous
	ShardHash       = engine.ShardHash
	ShardRange      = engine.ShardRange
)

// CmpOp is a comparison operator usable in WHERE predicates (and the
// builder's Where clause).
type CmpOp = prune.CmpOp

// Comparison operators.
const (
	OpGT = prune.OpGT
	OpGE = prune.OpGE
	OpLT = prune.OpLT
	OpLE = prune.OpLE
	OpEQ = prune.OpEQ
	OpNE = prune.OpNE
)

// Query kinds.
const (
	KindFilter     = engine.KindFilter
	KindDistinct   = engine.KindDistinct
	KindTopN       = engine.KindTopN
	KindGroupByMax = engine.KindGroupByMax
	KindGroupBySum = engine.KindGroupBySum
	KindHaving     = engine.KindHaving
	KindJoin       = engine.KindJoin
	KindSkyline    = engine.KindSkyline
)

// ExecDirect runs a query exactly on one node (the ground truth).
//
// Deprecated: prefer the session API (Open + DB.Exec), which plans,
// admission-checks and reports through one entrypoint. ExecDirect stays
// as the ground-truth reference for equivalence checks.
func ExecDirect(q *Query) (*Result, error) { return engine.ExecDirect(q) }

// ExecCheetah runs a query along the pruned path: CWorkers serialize the
// relevant columns, the simulated switch prunes, the master completes.
//
// Deprecated: prefer the session API (Open + DB.Exec); use ExecCheetah
// directly only to pin a hand-constructed pruner or the legacy scalar
// path.
func ExecCheetah(q *Query, opts CheetahOptions) (*CheetahRun, error) {
	return engine.ExecCheetah(q, opts)
}

// ExecSharded runs a query across a fabric of N switches: the table is
// sharded (hash-on-key for joins, so matching keys co-locate), each
// shard streams through its own switch program concurrently, and the
// master's two-level merge reproduces ExecDirect exactly. Prefer the
// session API (Open with SessionOptions.Switches + DB.Exec), which
// additionally sizes one program per switch; call ExecSharded directly
// to pin per-switch pruners, flows, or a shard strategy.
func ExecSharded(q *Query, opts ShardedOptions) (*ShardedRun, error) {
	return engine.ExecSharded(q, opts)
}

// DefaultCostModel returns the calibrated completion-time model.
func DefaultCostModel() CostModel { return engine.DefaultCostModel() }

// Cluster execution over the simulated network.
type (
	// ClusterConfig shapes an end-to-end cluster run.
	ClusterConfig = cluster.Config
	// ClusterReport summarizes protocol behaviour of a run.
	ClusterReport = cluster.Report
)

// RunCluster executes a single-pass query end-to-end over the simulated
// lossy network with the reliability protocol of §7.2.
//
// Deprecated: prefer the session API with SessionOptions.UseCluster,
// which plans the pruner and routes automatically.
func RunCluster(q *Query, p Pruner, cfg ClusterConfig) (*Result, *ClusterReport, error) {
	return cluster.Run(q, p, cfg)
}

// Pruners.
type (
	// Pruner is a switch pruning program with statistics.
	Pruner = prune.Pruner
	// PruneStats counts a pruner's traffic.
	PruneStats = prune.Stats

	// DistinctConfig configures the DISTINCT pruner.
	DistinctConfig = prune.DistinctConfig
	// DetTopNConfig configures the deterministic TOP N pruner.
	DetTopNConfig = prune.DetTopNConfig
	// RandTopNConfig configures the randomized TOP N pruner.
	RandTopNConfig = prune.RandTopNConfig
	// GroupByConfig configures the max/min GROUP BY pruner.
	GroupByConfig = prune.GroupByConfig
	// GroupBySumConfig configures the in-switch SUM aggregation pruner.
	GroupBySumConfig = prune.GroupBySumConfig
	// JoinConfig configures the two-pass Bloom-filter JOIN pruner.
	JoinConfig = prune.JoinConfig
	// HavingConfig configures the Count-Min HAVING pruner.
	HavingConfig = prune.HavingConfig
	// SkylineConfig configures the SKYLINE pruner.
	SkylineConfig = prune.SkylineConfig
)

// Cache replacement policies for DISTINCT.
const (
	FIFO = cache.FIFO
	LRU  = cache.LRU
)

// Skyline heuristics.
const (
	SkylineSum      = prune.SkylineSum
	SkylineAPH      = prune.SkylineAPH
	SkylineBaseline = prune.SkylineBaseline
)

// Pruner constructors.
var (
	NewDistinct   = prune.NewDistinct
	NewDetTopN    = prune.NewDetTopN
	NewRandTopN   = prune.NewRandTopN
	NewGroupBy    = prune.NewGroupBy
	NewGroupBySum = prune.NewGroupBySum
	NewJoin       = prune.NewJoin
	NewHaving     = prune.NewHaving
	NewSkyline    = prune.NewSkyline
)

// Configuration formulas from §5.
var (
	// TopNColumnsFor computes Theorem 2's matrix-column count.
	TopNColumnsFor = prune.TopNColumnsFor
	// OptimalTopNRows jointly optimizes the TOP N matrix dimensions.
	OptimalTopNRows = prune.OptimalTopNRows
)

// Switch hardware models.
type (
	// SwitchModel describes PISA hardware resources.
	SwitchModel = switchsim.Model
	// SwitchPipeline packs pruning programs onto a model.
	SwitchPipeline = switchsim.Pipeline
	// ResourceProfile is one algorithm's Table 2 row.
	ResourceProfile = switchsim.Profile
)

// Tofino returns the default 12-stage switch model.
func Tofino() SwitchModel { return switchsim.Tofino() }

// Tofino2 returns the larger 20-stage model.
func Tofino2() SwitchModel { return switchsim.Tofino2() }

// NewPipeline creates an empty pipeline for a model.
func NewPipeline(m SwitchModel) (*SwitchPipeline, error) { return switchsim.NewPipeline(m) }
