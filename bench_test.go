// Package cheetah_test holds the top-level benchmark harness: one
// testing.B per paper table/figure (each regenerates its rows/series at
// a reduced scale; use cmd/cheetah-bench -scale 1 for paper scale), plus
// end-to-end micro-benchmarks of the pruning hot path.
package cheetah_test

import (
	"io"
	"testing"

	"cheetah"
	"cheetah/internal/bench"
	"cheetah/internal/boolexpr"
	"cheetah/internal/prune"
	"cheetah/internal/workload"
)

// benchOpts keeps figure regeneration inside benchmark time budgets.
func benchOpts() bench.Options {
	return bench.Options{Scale: 200, Seeds: 2, BaseSeed: 0xbe}
}

func BenchmarkTable2Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Hardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5CompletionTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5(nil, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6ScaleAndWorkers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig6(nil, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7NetAccelDrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7(nil, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8(nil, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9MasterLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig9(nil, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10aDistinct(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10a(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10bSkyline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10b(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10cTopN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10c(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10dGroupBy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10d(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10eJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10e(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10fHaving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10f(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11PruningVsScale(b *testing.B) {
	o := benchOpts()
	panels := []func(bench.Options) (*bench.Figure, error){
		bench.Fig11a, bench.Fig11b, bench.Fig11c,
		bench.Fig11d, bench.Fig11e, bench.Fig11f,
	}
	for i := 0; i < b.N; i++ {
		for _, f := range panels {
			if _, err := f(o); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- end-to-end micro-benchmarks over the public API ---

func buildUserVisits(b *testing.B, rows int) *cheetah.Table {
	b.Helper()
	uv, err := workload.UserVisits(workload.DefaultUserVisits(rows, 1))
	if err != nil {
		b.Fatal(err)
	}
	return uv
}

// benchExecCheetah runs q through ExecCheetah with the given path and
// reports entries/s; the fused (default), batch (NoFuse) and scalar
// variants of each benchmark share it so the speedup criteria are
// measurable in one build.
func benchExecCheetah(b *testing.B, q *cheetah.Query, rows int, opts cheetah.CheetahOptions) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Workers, opts.Seed = 5, uint64(i)
		if _, err := cheetah.ExecCheetah(q, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds(), "entries/s")
}

func distinct100kQuery(b *testing.B) *cheetah.Query {
	uv := buildUserVisits(b, 100_000)
	return &cheetah.Query{Kind: cheetah.KindDistinct, Table: uv, DistinctCols: []string{"userAgent"}}
}

func topN100kQuery(b *testing.B) *cheetah.Query {
	uv := buildUserVisits(b, 100_000)
	return &cheetah.Query{Kind: cheetah.KindTopN, Table: uv, OrderCol: "adRevenue", N: 250}
}

func filter100kQuery(b *testing.B) *cheetah.Query {
	uv := buildUserVisits(b, 100_000)
	return &cheetah.Query{
		Kind:  cheetah.KindFilter,
		Table: uv,
		Predicates: []cheetah.FilterPred{
			{Col: "adRevenue", Op: prune.OpGT, Const: 500_000},
			{Col: "duration", Op: prune.OpLE, Const: 120},
		},
		Formula:   boolexpr.And{boolexpr.Leaf{V: 0}, boolexpr.Leaf{V: 1}},
		CountOnly: true,
	}
}

func BenchmarkExecCheetahDistinct100k(b *testing.B) {
	benchExecCheetah(b, distinct100kQuery(b), 100_000, cheetah.CheetahOptions{})
}

func BenchmarkExecCheetahDistinct100kBatch(b *testing.B) {
	benchExecCheetah(b, distinct100kQuery(b), 100_000, cheetah.CheetahOptions{NoFuse: true})
}

func BenchmarkExecCheetahDistinct100kScalar(b *testing.B) {
	benchExecCheetah(b, distinct100kQuery(b), 100_000, cheetah.CheetahOptions{Scalar: true})
}

func BenchmarkExecCheetahTopN100k(b *testing.B) {
	benchExecCheetah(b, topN100kQuery(b), 100_000, cheetah.CheetahOptions{})
}

func BenchmarkExecCheetahTopN100kBatch(b *testing.B) {
	benchExecCheetah(b, topN100kQuery(b), 100_000, cheetah.CheetahOptions{NoFuse: true})
}

func BenchmarkExecCheetahTopN100kScalar(b *testing.B) {
	benchExecCheetah(b, topN100kQuery(b), 100_000, cheetah.CheetahOptions{Scalar: true})
}

func BenchmarkExecCheetahFilter100k(b *testing.B) {
	benchExecCheetah(b, filter100kQuery(b), 100_000, cheetah.CheetahOptions{})
}

func BenchmarkExecCheetahFilter100kBatch(b *testing.B) {
	benchExecCheetah(b, filter100kQuery(b), 100_000, cheetah.CheetahOptions{NoFuse: true})
}

func BenchmarkExecCheetahFilter100kScalar(b *testing.B) {
	benchExecCheetah(b, filter100kQuery(b), 100_000, cheetah.CheetahOptions{Scalar: true})
}

func BenchmarkExecDirectDistinct100k(b *testing.B) {
	uv := buildUserVisits(b, 100_000)
	q := &cheetah.Query{Kind: cheetah.KindDistinct, Table: uv, DistinctCols: []string{"userAgent"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cheetah.ExecDirect(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineSwitchProcess(b *testing.B) {
	pl, err := cheetah.NewPipeline(cheetah.Tofino())
	if err != nil {
		b.Fatal(err)
	}
	d, err := cheetah.NewDistinct(cheetah.DistinctConfig{Rows: 4096, Cols: 2, Policy: cheetah.LRU})
	if err != nil {
		b.Fatal(err)
	}
	if err := pl.Install(1, d); err != nil {
		b.Fatal(err)
	}
	vals := []uint64{0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals[0] = uint64(i % 65536)
		pl.Process(1, vals)
	}
}
